"""The timed benchmark runner.

:func:`run_scenario` materialises one :class:`repro.bench.scenarios.Scenario`
— generate the graph, partition it, run the frontier program from each source
— and measures three independent things:

* **wall-clock seconds** of each pipeline phase (graph build, partitioning,
  traversal) plus the traversal-internal phases the engine accounts
  (kernels, nn exchange, delegate reductions).  Traversal phases take the
  *minimum* over ``repeats`` identical passes, the usual noise filter for
  micro-benchmarks;
* the **modeled milliseconds** of the simulated cluster (the paper's metric),
  summed over the scenario's sources; and
* the **workload counters** — iterations, edges examined per kernel class,
  communication volumes and a checksum of the answers — which are fully
  deterministic.

Determinism is asserted, not assumed: with ``check_determinism=True`` (the
default whenever ``repeats >= 2``) the counters of every repeat are compared
and any difference raises :class:`BenchDeterminismError`, because a
non-reproducible workload would make every other number in the artifact
meaningless.
"""

from __future__ import annotations

import tempfile
from pathlib import Path
from typing import Callable, Iterable, Sequence

import numpy as np

from repro.bench.artifact import new_artifact, save_artifact
from repro.bench.scenarios import Scenario
from repro.core.engine import TraversalEngine
from repro.partition.delegates import suggest_threshold
from repro.partition.layout import ClusterLayout
from repro.partition.subgraphs import build_partitions
from repro.utils.rng import hash64
from repro.utils.rss import max_rss_mb
from repro.utils.timing import Timer, TimingBreakdown, now_s

__all__ = [
    "BenchDeterminismError",
    "values_checksum",
    "time_program",
    "run_scenario",
    "run_build_scenario",
    "run_serve_scenario",
    "run_serve_cluster_scenario",
    "run_dynamic_scenario",
    "run_suite",
]


def _resolve_storage(storage: str | None, spec: Scenario) -> str:
    """The storage mode a scenario actually runs on.

    Precedence mirrors the backend axis: explicit run-time override, then
    the scenario's own pin, then the environment default.  Scenarios that
    mutate their graph (dynamic, serve/cluster with updates) are pinned to
    memory by their runners regardless — stores are immutable — and the
    record's ``storage`` key always says what really ran.
    """
    from repro.storage import default_storage_name

    return storage or spec.storage or default_storage_name()


class BenchDeterminismError(AssertionError):
    """Two passes over the same scenario produced different workload counters."""


def values_checksum(result) -> int:
    """Order-independent 64-bit checksum of a traversal result's answer.

    Covers whichever per-vertex array the result carries (``distances``,
    ``parents`` or ``labels`` — or, for the weighted zoo, ``dist_bits``,
    ``ranks`` or ``per_vertex``) so the comparator can prove two artifacts
    describe the *same* traversal answers, not merely similar timings.
    """
    attrs = ("distances", "parents", "labels")
    if getattr(result, "dist_bits", None) is not None:
        # SSSP answers live in the int64 bit view — the exact values the
        # engine's minimum-folds operated on; the float ``distances``
        # property carries inf for unreached vertices and cannot coerce.
        attrs = ("dist_bits",)
    elif getattr(result, "ranks", None) is not None:
        attrs = ("ranks",)  # PageRank fixed-point ranks: exact integers
    elif getattr(result, "per_vertex", None) is not None:
        attrs = ("per_vertex",)  # per-vertex triangle counts
    checksum = np.uint64(0)
    for attr in attrs:
        values = getattr(result, attr, None)
        if values is None:
            continue
        values = np.asarray(values, dtype=np.int64)
        # Hash (index, value) pairs so permutations do not collide.
        mixed = hash64(
            values.view(np.uint64) ^ hash64(np.arange(values.size, dtype=np.uint64))
        )
        checksum ^= np.bitwise_xor.reduce(mixed) if mixed.size else np.uint64(0)
    return int(checksum)


def _result_counters(result) -> dict:
    """The deterministic portion of one traversal result."""
    return {
        "iterations": int(result.iterations),
        "total_edges_examined": int(result.total_edges_examined),
        "edges_by_kernel": {k: int(v) for k, v in sorted(result.workload_by_kernel().items())},
        "comm": result.comm_stats.as_dict(),
        "modeled_elapsed_ms": float(result.timing.elapsed_ms),
        "values_checksum": values_checksum(result),
    }


def _merge_counters(per_source: list[dict]) -> dict:
    """Aggregate per-source counters into one scenario-level record."""
    merged = {
        "runs": len(per_source),
        "iterations": sum(c["iterations"] for c in per_source),
        "total_edges_examined": sum(c["total_edges_examined"] for c in per_source),
        "edges_by_kernel": {},
        "comm": {},
        "modeled_elapsed_ms": float(sum(c["modeled_elapsed_ms"] for c in per_source)),
        "values_checksum": 0,
    }
    for i, counters in enumerate(per_source):
        for kernel, edges in counters["edges_by_kernel"].items():
            merged["edges_by_kernel"][kernel] = (
                merged["edges_by_kernel"].get(kernel, 0) + edges
            )
        for key, value in counters["comm"].items():
            merged["comm"][key] = merged["comm"].get(key, 0) + value
        # Mix the run index into each checksum before folding: a bare XOR
        # would cancel identical per-source checksums (sources are drawn with
        # replacement, so collisions happen), silently blinding the
        # counter-drift gate to answer changes.
        merged["values_checksum"] ^= int(
            hash64(np.uint64(counters["values_checksum"]), seed=i + 1)
        )
    return merged


def time_program(
    engine: TraversalEngine,
    program_factory: Callable[[], object],
    repeats: int = 3,
    check_determinism: bool = True,
) -> dict:
    """Run one program ``repeats`` times; return wall phases + counters.

    The returned record holds the per-phase wall minima (seconds), the modeled
    time of one pass, and the deterministic counters — raising
    :class:`BenchDeterminismError` if any repeat disagrees on the counters
    (unless ``check_determinism`` is off).
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    walls: list[dict] = []
    counters: dict | None = None
    timing: TimingBreakdown | None = None
    for _ in range(repeats):
        result = engine.run(program_factory())
        walls.append(dict(result.wall_s))
        current = _result_counters(result)
        if counters is None:
            counters, timing = current, result.timing
        elif check_determinism and current != counters:
            raise BenchDeterminismError(
                "workload counters differ between two identical passes: "
                f"{counters} vs {current}"
            )
    phases = sorted({phase for wall in walls for phase in wall})
    return {
        "wall_s": {phase: min(w.get(phase, 0.0) for w in walls) for phase in phases},
        "modeled_ms": timing.as_dict(),
        "counters": counters,
    }


def run_serve_scenario(
    spec: Scenario,
    repeats: int = 2,
    check_determinism: bool = True,
    serve_batched: bool = True,
    backend: str | None = None,
    kernels: str | None = None,
    storage: str | None = None,
) -> dict:
    """Execute one serving scenario: replay its query stream, measure qps.

    Each repeat runs the full closed-loop stream through a *fresh*
    :class:`repro.serve.QueryService` (so cache state never leaks between
    passes); wall time keeps the fastest pass.  The counters — query,
    coalescing and cache statistics plus an order-mixed checksum of every
    answer — are deterministic and, by construction, identical whether the
    service batches or runs sequentially (``serve_batched=False``) and
    whichever execution backend runs the sweeps, which is what makes
    before/after artifact pairs cleanly comparable.  Registry serving
    scenarios never mutate their graph, so the storage axis applies to the
    served adjacency exactly as it does to plain traversals.
    """
    from repro.serve.service import QueryService

    with Timer() as build_timer:
        edges = spec.build_edges()
    rss = {"graph_build": max_rss_mb()}
    layout = ClusterLayout.from_notation(spec.layout)
    threshold = (
        spec.threshold
        if spec.threshold is not None
        else suggest_threshold(edges, layout.num_gpus)
    )
    with Timer() as partition_timer:
        graph = build_partitions(edges, layout, threshold)
    rss["partition"] = max_rss_mb()

    effective_storage = _resolve_storage(storage, spec)
    store_dir: tempfile.TemporaryDirectory | None = None
    storage_wall = 0.0
    if effective_storage != "memory":
        from repro.storage import apply_storage

        store_dir = tempfile.TemporaryDirectory(prefix="repro-bench-store-")
        with Timer() as storage_timer:
            graph = apply_storage(graph, effective_storage, path=store_dir.name)
        storage_wall = storage_timer.elapsed

    engine = TraversalEngine(
        graph, options=spec.options, backend=backend or spec.backend, kernels=kernels
    )

    from repro.graph.degree import out_degrees

    workload = spec.workload()
    stream = workload.generate(edges.num_vertices, degrees=out_degrees(edges))

    walls: list[float] = []
    counters: dict | None = None
    modeled_ms = 0.0
    throughput: dict | None = None
    try:
        backend_name = engine.backend_name
        kernels_name = engine.provider_name
        for _ in range(repeats):
            service = QueryService(
                engine,
                batch_size=spec.batch_size,
                cache_size=spec.cache_size,
                batched=serve_batched,
            )
            results = service.serve(stream)
            checksum = 0
            modeled = 0.0
            seen: set[int] = set()
            for i, result in enumerate(results):
                checksum ^= int(hash64(np.uint64(values_checksum(result)), seed=i + 1))
                if id(result) not in seen:
                    seen.add(id(result))
                    modeled += float(result.timing.elapsed_ms)
            current = {
                "queries": service.stats.queries,
                "flushes": service.stats.flushes,
                "coalesced": service.stats.coalesced,
                "cache_hits": service.cache.stats.hits,
                "cache_misses": service.cache.stats.misses,
                "cache_evictions": service.cache.stats.evictions,
                "answers_checksum": checksum,
            }
            if counters is None:
                counters = current
                modeled_ms = modeled
                throughput = {
                    "queries": service.stats.queries,
                    "batched": bool(serve_batched),
                    "batch_size": spec.batch_size,
                    "traversals": service.stats.traversals,
                    "batches": service.stats.batches,
                }
            elif check_determinism and current != counters:
                raise BenchDeterminismError(
                    "serving counters differ between two identical passes: "
                    f"{counters} vs {current}"
                )
            walls.append(service.stats.wall_s)
    finally:
        engine.close()
        if store_dir is not None:
            store_dir.cleanup()
    rss["traversal"] = max_rss_mb()

    serve_wall = min(walls)
    throughput["queries_per_sec"] = (
        throughput["queries"] / serve_wall if serve_wall > 0 else 0.0
    )
    wall = {
        "graph_build": build_timer.elapsed,
        "partition": partition_timer.elapsed,
        "traversal": serve_wall,
        "total": build_timer.elapsed + partition_timer.elapsed + storage_wall + serve_wall,
    }
    if effective_storage != "memory":
        wall["storage"] = storage_wall
    return {
        "spec": spec.describe(),
        "repeats": repeats,
        "backend": backend_name,
        "kernels": kernels_name,
        "storage": effective_storage,
        "threshold_used": int(threshold),
        "workload": workload.describe(),
        "wall_s": {k: float(v) for k, v in sorted(wall.items())},
        "modeled_ms": {"elapsed_ms": modeled_ms},
        "counters": counters,
        "throughput": throughput,
        "max_rss_mb": {k: float(v) for k, v in sorted(rss.items())},
    }


def run_serve_cluster_scenario(
    spec: Scenario,
    repeats: int = 2,
    check_determinism: bool = True,
    cluster_hedging: bool = True,
    backend: str | None = None,
    kernels: str | None = None,
    storage: str | None = None,
) -> dict:
    """Execute one cluster scenario: replay its open-loop stream, measure tails.

    Each repeat replays the full timed stream through a *fresh* replica pool
    and dispatcher on the virtual clock (caches and histograms never leak
    between passes); the real wall time keeps the fastest pass.  The entire
    snapshot — gated counters *and* the per-mode ``cluster`` section — must
    be identical across repeats (virtual time is deterministic); only the
    ``counters`` half is additionally identical across hedging modes and
    execution backends, which is what the artifact comparator gates.

    ``cluster_hedging=False`` (the ``--cluster-no-hedge`` flag) records the
    unhedged half of a before/after pair; scenarios with one replica never
    hedge regardless.
    """
    from repro.graph.degree import out_degrees
    from repro.serve.cluster.dispatcher import ClusterDispatcher
    from repro.serve.cluster.replica import ReplicaPool

    with Timer() as build_timer:
        edges = spec.build_edges()
    rss = {"graph_build": max_rss_mb()}
    layout = ClusterLayout.from_notation(spec.layout)
    threshold = (
        spec.threshold
        if spec.threshold is not None
        else suggest_threshold(edges, layout.num_gpus)
    )
    with Timer() as partition_timer:
        graph = build_partitions(edges, layout, threshold)
    rss["partition"] = max_rss_mb()

    workload = spec.workload()
    mutating = spec.cluster_updates > 0

    # Update-replaying clusters mutate their served graphs; stores are
    # immutable, so such scenarios pin memory and record that truthfully.
    effective_storage = "memory" if mutating else _resolve_storage(storage, spec)
    store_dir: tempfile.TemporaryDirectory | None = None
    storage_wall = 0.0
    if effective_storage != "memory":
        from repro.storage import apply_storage

        store_dir = tempfile.TemporaryDirectory(prefix="repro-bench-store-")
        with Timer() as storage_timer:
            graph = apply_storage(graph, effective_storage, path=store_dir.name)
        storage_wall = storage_timer.elapsed
    stream = workload.generate(
        edges.num_vertices,
        degrees=out_degrees(edges),
        edges=edges if mutating else None,
    )
    config = spec.cluster_config(hedge=cluster_hedging)

    walls: list[float] = []
    snapshot: dict | None = None
    backend_name = ""
    kernels_name = ""
    for _ in range(repeats):
        if mutating:
            # Updates mutate the graph: every repeat serves its own mutable
            # view adopting the already-built (read-only) partitioning.
            from repro.dynamic import DynamicGraph

            served = DynamicGraph(edges, layout, threshold, partitioned=graph)
        else:
            served = graph
        pool = ReplicaPool(
            served,
            spec.num_replicas,
            options=spec.options,
            backend=backend or spec.backend,
            kernels=kernels,
            batch_size=spec.batch_size,
            cache_size=spec.cache_size,
        )
        try:
            backend_name = pool.backend_name
            kernels_name = pool.kernels_name
            dispatcher = ClusterDispatcher(pool, config)
            with Timer() as replay_timer:
                current = dispatcher.run(stream)
        finally:
            pool.close()
        if snapshot is None:
            snapshot = current
        elif check_determinism and current != snapshot:
            raise BenchDeterminismError(
                "cluster snapshot differs between two identical passes: "
                f"{snapshot} vs {current}"
            )
        walls.append(replay_timer.elapsed)
    if store_dir is not None:
        store_dir.cleanup()
    rss["traversal"] = max_rss_mb()

    replay_wall = min(walls)
    wall = {
        "graph_build": build_timer.elapsed,
        "partition": partition_timer.elapsed,
        "traversal": replay_wall,
        "total": build_timer.elapsed + partition_timer.elapsed + storage_wall + replay_wall,
    }
    if effective_storage != "memory":
        wall["storage"] = storage_wall
    return {
        "spec": spec.describe(),
        "repeats": repeats,
        "backend": backend_name,
        "kernels": kernels_name,
        "storage": effective_storage,
        "threshold_used": int(threshold),
        "workload": workload.describe(),
        "wall_s": {k: float(v) for k, v in sorted(wall.items())},
        "modeled_ms": {"elapsed_ms": snapshot["cluster"]["virtual_makespan_ms"]},
        "counters": snapshot["counters"],
        "cluster": snapshot["cluster"],
        "max_rss_mb": {k: float(v) for k, v in sorted(rss.items())},
    }


def run_dynamic_scenario(
    spec: Scenario,
    repeats: int = 2,
    check_determinism: bool = True,
    dyn_incremental: bool = True,
    backend: str | None = None,
    kernels: str | None = None,
) -> dict:
    """Execute one dynamic scenario: replay its update stream, measure repair.

    Each repeat builds a *fresh* :class:`repro.dynamic.DynamicGraph` (updates
    mutate it), runs the initial full traversal, then applies every pinned
    update batch twice over: the **incremental repair** through the
    maintained answer and the **full recompute** that doubles as the
    bit-identical verification.  Because both paths always run, the recorded
    counters — update totals, both paths' examined edges and modeled times,
    answer checksums — are independent of ``dyn_incremental``; the flag only
    decides which path's wall time lands in the gated ``traversal`` phase,
    so a ``--dyn-recompute`` artifact and a default artifact of the same
    scenario differ purely in maintenance strategy.
    """
    from repro.dynamic.graph import DynamicEngine, DynamicGraph
    from repro.dynamic.incremental import MaintainedComponents, MaintainedLevels

    with Timer() as build_timer:
        edges = spec.build_edges()
    layout = ClusterLayout.from_notation(spec.layout)
    threshold = (
        spec.threshold
        if spec.threshold is not None
        else suggest_threshold(edges, layout.num_gpus)
    )
    stream = spec.update_stream(edges)
    source = spec.pick_sources(edges)[0] if spec.maintained == "levels" else None

    walls: list[dict] = []
    counters: dict | None = None
    modeled_measured = 0.0
    partition_s = float("inf")
    backend_name = ""
    kernels_name = ""
    for _ in range(repeats):
        with Timer() as partition_timer:
            dyn = DynamicGraph(edges, layout, threshold)
        partition_s = min(partition_s, partition_timer.elapsed)
        engine = DynamicEngine(
            dyn, options=spec.options, backend=backend or spec.backend, kernels=kernels
        )
        try:
            backend_name = engine.backend_name
            kernels_name = engine.provider_name
            if spec.maintained == "levels":
                maintained = MaintainedLevels(engine, source)
            else:
                maintained = MaintainedComponents(engine)
            initial = maintained.result
            initial_wall = float(initial.wall_s["traversal"])

            inserts = deletes = 0
            repair_wall = 0.0
            recompute_wall = 0.0
            recompute_edges = 0
            recompute_modeled = 0.0
            apply_wall = 0.0
            checksum = 0
            for i, delta in enumerate(stream):
                apply_started = now_s()
                applied = engine.apply_delta(delta)
                apply_wall += now_s() - apply_started
                inserts += applied.num_inserts
                deletes += applied.num_deletes
                update_started = now_s()
                repaired = maintained.update(applied)
                repair_wall += now_s() - update_started
                fresh = maintained.verify()  # raises on any divergence
                recompute_wall += float(fresh.wall_s["traversal"])
                recompute_edges += int(fresh.total_edges_examined)
                recompute_modeled += float(fresh.timing.elapsed_ms)
                checksum ^= int(
                    hash64(np.uint64(values_checksum(repaired)), seed=i + 1)
                )
            stats = maintained.stats.as_dict()
            current = {
                "updates_applied": len(stream),
                "insert_edges": inserts,
                "delete_edges": deletes,
                "compactions": dyn.compactions,
                "final_version": dyn.version,
                "overlay_edges": dyn.overlay.num_edges,
                "repairs": stats["repairs"],
                "maintenance_recomputes": stats["recomputes"] - 1,  # minus initial
                "skipped": stats["skipped"],
                "repair_edges": stats["repair_edges"],
                "repair_iterations": stats["repair_iterations"],
                "repair_modeled_ms": stats["repair_modeled_ms"],
                "recompute_edges": recompute_edges,
                "recompute_modeled_ms": recompute_modeled,
                "initial_edges": int(initial.total_edges_examined),
                "initial_modeled_ms": float(initial.timing.elapsed_ms),
                "answers_checksum": checksum,
            }
            if counters is None:
                counters = current
            elif check_determinism and current != counters:
                raise BenchDeterminismError(
                    "dynamic counters differ between two identical passes: "
                    f"{counters} vs {current}"
                )
            # The maintained path's modeled cost includes recompute fallbacks
            # (deletions); the measured mode decides the gated wall phase.
            modeled_incremental = (
                stats["repair_modeled_ms"]
                + stats["recompute_modeled_ms"]
                - float(initial.timing.elapsed_ms)
            )
            measured_wall = repair_wall if dyn_incremental else recompute_wall
            modeled_measured = modeled_incremental if dyn_incremental else recompute_modeled
            modeled_recompute = recompute_modeled
            walls.append(
                {
                    "initial": initial_wall,
                    "apply": apply_wall,
                    "traversal": initial_wall + measured_wall,
                    "incremental": repair_wall,
                    "recompute": recompute_wall,
                }
            )
        finally:
            engine.close()

    wall = {phase: min(w[phase] for w in walls) for phase in walls[0]}
    # The dynamic section derives its wall numbers from the same per-phase
    # minima as wall_s, so the two views of one artifact can never
    # contradict each other; the modeled values are deterministic (the
    # repeats guard above proves it), so the last repeat's suffice.
    maintain_total = wall["apply"] + (
        wall["incremental"] if dyn_incremental else wall["recompute"]
    )
    dynamic_section = {
        "mode": "incremental" if dyn_incremental else "recompute",
        "updates": len(stream),
        "updates_per_sec": len(stream) / maintain_total if maintain_total > 0 else 0.0,
        "wall_incremental_s": wall["incremental"],
        "wall_recompute_s": wall["recompute"],
        "wall_apply_s": wall["apply"],
        "wall_speedup": (
            wall["recompute"] / wall["incremental"] if wall["incremental"] > 0 else 0.0
        ),
        "modeled_incremental_ms": modeled_incremental,
        "modeled_recompute_ms": modeled_recompute,
        "modeled_speedup": (
            modeled_recompute / modeled_incremental if modeled_incremental > 0 else 0.0
        ),
    }
    wall["graph_build"] = build_timer.elapsed
    wall["partition"] = partition_s
    wall["total"] = build_timer.elapsed + partition_s + wall["traversal"] + wall["apply"]
    return {
        "spec": spec.describe(),
        "repeats": repeats,
        "backend": backend_name,
        "kernels": kernels_name,
        # Dynamic scenarios mutate their graph; stores are immutable, so the
        # storage axis is pinned to memory regardless of any override.
        "storage": "memory",
        "threshold_used": int(threshold),
        "wall_s": {k: float(v) for k, v in sorted(wall.items())},
        "modeled_ms": {"elapsed_ms": modeled_measured},
        "counters": counters,
        "dynamic": dynamic_section,
        "max_rss_mb": {"traversal": max_rss_mb()},
    }


def run_scenario(
    spec: Scenario,
    repeats: int = 2,
    check_determinism: bool | None = None,
    serve_batched: bool = True,
    cluster_hedging: bool = True,
    dyn_incremental: bool = True,
    backend: str | None = None,
    kernels: str | None = None,
    storage: str | None = None,
) -> dict:
    """Execute one scenario end to end; return its artifact record.

    Parameters
    ----------
    spec:
        The scenario to run.
    repeats:
        Traversal passes per source; wall times keep the per-phase minimum.
    check_determinism:
        Assert counter equality across passes.  Defaults to ``repeats >= 2``
        (a single pass has nothing to compare).
    serve_batched:
        For serving scenarios only: route misses through the batched MS-BFS
        path (the default) or the sequential baseline.
    cluster_hedging:
        For cluster scenarios only: hedge stragglers to a second replica
        (the default) or serve without hedging — the before/after axis of
        the tail-latency pair.  Gated counters are identical either way.
    dyn_incremental:
        For dynamic scenarios only: attribute the gated traversal wall to
        incremental repair (the default) or to the full-recompute baseline.
        Counters are identical either way (both paths always run).
    backend:
        Execution backend override; ``None`` runs the scenario's own
        (``spec.backend``).  The resolved name is recorded in the record's
        ``backend`` key — never in the spec, which identifies the workload.
    kernels:
        Kernel-provider spec (``"numpy"``/``"numba"``/``"auto"``); ``None``
        defers to ``$REPRO_KERNELS`` / ``auto``.  Like ``backend``, the
        resolved provider name lands in the record's ``kernels`` key and
        never in the spec: providers change wall-clock, not the workload.
    storage:
        Adjacency-storage override (``"memory"``/``"mmap"``/``"compressed"``);
        ``None`` defers to the scenario's pin or ``$REPRO_STORAGE``.  A third
        record-level axis: the storage that actually ran lands in the
        record's ``storage`` key, never in the spec.  Mutating scenarios
        (dynamic, serve/cluster with updates) pin memory and record that.
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    if check_determinism is None:
        check_determinism = repeats >= 2
    if check_determinism and repeats < 2:
        raise ValueError("determinism checking needs at least two repeats")
    if spec.program == "serve":
        return run_serve_scenario(
            spec,
            repeats=repeats,
            check_determinism=check_determinism,
            serve_batched=serve_batched,
            backend=backend,
            kernels=kernels,
            storage=storage,
        )
    if spec.program == "serve_cluster":
        return run_serve_cluster_scenario(
            spec,
            repeats=repeats,
            check_determinism=check_determinism,
            cluster_hedging=cluster_hedging,
            backend=backend,
            kernels=kernels,
            storage=storage,
        )
    if spec.program == "dynamic":
        return run_dynamic_scenario(
            spec,
            repeats=repeats,
            check_determinism=check_determinism,
            dyn_incremental=dyn_incremental,
            backend=backend,
            kernels=kernels,
        )
    if spec.program == "build":
        return run_build_scenario(
            spec,
            repeats=repeats,
            check_determinism=check_determinism,
            backend=backend,
            kernels=kernels,
            storage=storage,
        )

    with Timer() as build_timer:
        edges = spec.build_edges()
    rss = {"graph_build": max_rss_mb()}
    layout = ClusterLayout.from_notation(spec.layout)
    threshold = (
        spec.threshold
        if spec.threshold is not None
        else suggest_threshold(edges, layout.num_gpus)
    )
    with Timer() as partition_timer:
        graph = build_partitions(edges, layout, threshold)
    rss["partition"] = max_rss_mb()

    effective_storage = _resolve_storage(storage, spec)
    store_dir: tempfile.TemporaryDirectory | None = None
    storage_wall = 0.0
    if effective_storage != "memory":
        from repro.storage import apply_storage

        store_dir = tempfile.TemporaryDirectory(prefix="repro-bench-store-")
        with Timer() as storage_timer:
            graph = apply_storage(graph, effective_storage, path=store_dir.name)
        storage_wall = storage_timer.elapsed
        rss["storage"] = max_rss_mb()

    engine = TraversalEngine(
        graph, options=spec.options, backend=backend or spec.backend, kernels=kernels
    )

    sources = spec.pick_sources(edges)
    wall = {"kernels": 0.0, "exchange": 0.0, "delegate_reduce": 0.0, "traversal": 0.0}
    modeled = TimingBreakdown()
    per_source_counters: list[dict] = []
    sssp_section: dict | None = None
    try:
        backend_name = engine.backend_name
        kernels_name = engine.provider_name
        for source in sources:
            timed = time_program(
                engine,
                lambda: spec.make_program(source),
                repeats=repeats,
                check_determinism=check_determinism,
            )
            for phase, seconds in timed["wall_s"].items():
                wall[phase] = wall.get(phase, 0.0) + seconds
            modeled = modeled + TimingBreakdown(**timed["modeled_ms"])
            per_source_counters.append(timed["counters"])
        if spec.program == "sssp":
            # Run the Bellman-Ford baseline from the same sources: its wall
            # and counters land in the record's "sssp" section (never in the
            # gated phases, which belong to the delta-stepping path), and its
            # answers must match delta-stepping's bit for bit — asserted
            # here, so every sssp artifact proves schedule equivalence.
            from repro.weighted import BellmanFordSSSP

            bf_wall = 0.0
            bf_modeled = 0.0
            bf_edges = 0
            for source, delta_counters in zip(sources, per_source_counters):
                timed = time_program(
                    engine,
                    lambda: BellmanFordSSSP(source),
                    repeats=repeats,
                    check_determinism=check_determinism,
                )
                if (
                    timed["counters"]["values_checksum"]
                    != delta_counters["values_checksum"]
                ):
                    raise BenchDeterminismError(
                        "delta-stepping and Bellman-Ford disagree on the "
                        f"distances from source {source} in {spec.name!r}"
                    )
                bf_wall += timed["wall_s"].get("traversal", 0.0)
                bf_modeled += float(timed["counters"]["modeled_elapsed_ms"])
                bf_edges += int(timed["counters"]["total_edges_examined"])
            delta_wall = wall["traversal"]
            delta_modeled = float(
                sum(c["modeled_elapsed_ms"] for c in per_source_counters)
            )
            sssp_section = {
                "delta": spec.delta if isinstance(spec.delta, str) else float(spec.delta),
                "wall_delta_s": delta_wall,
                "wall_bellman_ford_s": bf_wall,
                "wall_speedup": bf_wall / delta_wall if delta_wall > 0 else 0.0,
                "modeled_delta_ms": delta_modeled,
                "modeled_bellman_ford_ms": bf_modeled,
                "modeled_speedup": (
                    bf_modeled / delta_modeled if delta_modeled > 0 else 0.0
                ),
                "edges_delta": int(
                    sum(c["total_edges_examined"] for c in per_source_counters)
                ),
                "edges_bellman_ford": bf_edges,
            }
    finally:
        engine.close()
        if store_dir is not None:
            # Unlinking open-mmapped segments is safe on POSIX; cached
            # handles keep their (now anonymous) pages until process exit.
            store_dir.cleanup()
    rss["traversal"] = max_rss_mb()

    wall["graph_build"] = build_timer.elapsed
    wall["partition"] = partition_timer.elapsed
    if effective_storage != "memory":
        wall["storage"] = storage_wall
    wall["total"] = (
        build_timer.elapsed + partition_timer.elapsed + storage_wall + wall["traversal"]
    )
    record = {
        "spec": spec.describe(),
        "repeats": repeats,
        "backend": backend_name,
        "kernels": kernels_name,
        "storage": effective_storage,
        "sources": sources,
        "threshold_used": int(threshold),
        "wall_s": {k: float(v) for k, v in sorted(wall.items())},
        "modeled_ms": modeled.as_dict(),
        "counters": _merge_counters(per_source_counters),
        "max_rss_mb": {k: float(v) for k, v in sorted(rss.items())},
    }
    if sssp_section is not None:
        record["sssp"] = {
            k: (float(v) if isinstance(v, float) else v) for k, v in sssp_section.items()
        }
    return record


def run_build_scenario(
    spec: Scenario,
    repeats: int = 2,
    check_determinism: bool = True,
    backend: str | None = None,
    kernels: str | None = None,
    storage: str | None = None,
) -> dict:
    """Execute one out-of-core build scenario; gate on the build wall.

    The gated phase is ``graph_build`` — the streamed external-memory
    pipeline (ingest/merge/threshold/distribute/assemble), whose per-pass
    walls land as ``build_*`` sub-phases — declared to the comparator via
    the record's ``gate_phase`` key, because the build *is* this scenario's
    workload.  The build runs once: it is deterministic and IO-dominated,
    where repeat minima would reward page-cache warmth, not the pipeline.
    ``partition`` is the store attach (mmap open), and a short BFS from the
    scenario's sources then proves the store actually serves answers — its
    counters feed the cross-storage equivalence gate.  ``memory`` is not a
    store flavour, so a memory resolution coerces to ``mmap``.
    """
    from repro.core.programs import BFSLevels
    from repro.storage import load_graph_store
    from repro.storage.extsort import external_build
    from repro.utils.rng import random_sources

    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    effective_storage = _resolve_storage(storage, spec)
    if effective_storage == "memory":
        effective_storage = "mmap"
    layout = ClusterLayout.from_notation(spec.layout)

    store_dir = tempfile.TemporaryDirectory(prefix="repro-bench-build-")
    rss: dict[str, float] = {}
    try:
        with Timer() as build_timer:
            store_path, report = external_build(
                spec.edge_chunks(),
                1 << spec.scale,
                layout,
                Path(store_dir.name) / "store",
                threshold=spec.threshold,
                storage=effective_storage,
                block_edges=spec.block_edges,
            )
        rss["graph_build"] = max_rss_mb()
        with Timer() as partition_timer:
            graph = load_graph_store(store_path)
        rss["partition"] = max_rss_mb()

        engine = TraversalEngine(
            graph, options=spec.options, backend=backend or spec.backend, kernels=kernels
        )
        sources = [
            int(s)
            for s in random_sources(
                graph.num_vertices,
                spec.sources,
                rng=spec.seed + 1,
                degrees=graph.separation.degrees,
            )
        ]
        wall = {"kernels": 0.0, "exchange": 0.0, "delegate_reduce": 0.0, "traversal": 0.0}
        modeled = TimingBreakdown()
        per_source_counters: list[dict] = []
        try:
            backend_name = engine.backend_name
            kernels_name = engine.provider_name
            for source in sources:
                timed = time_program(
                    engine,
                    lambda: BFSLevels(source=source),
                    repeats=repeats,
                    check_determinism=check_determinism,
                )
                for phase, seconds in timed["wall_s"].items():
                    wall[phase] = wall.get(phase, 0.0) + seconds
                modeled = modeled + TimingBreakdown(**timed["modeled_ms"])
                per_source_counters.append(timed["counters"])
        finally:
            engine.close()
        rss["traversal"] = max_rss_mb()
    finally:
        store_dir.cleanup()

    for pass_name, seconds in report["walls"].items():
        wall[f"build_{pass_name}"] = float(seconds)
    wall["graph_build"] = build_timer.elapsed
    wall["partition"] = partition_timer.elapsed
    wall["total"] = build_timer.elapsed + partition_timer.elapsed + wall["traversal"]
    return {
        "spec": spec.describe(),
        "repeats": repeats,
        "backend": backend_name,
        "kernels": kernels_name,
        "storage": effective_storage,
        "gate_phase": "graph_build",
        "sources": sources,
        "threshold_used": int(report["threshold"]),
        "build": {
            "num_chunks": int(report["num_chunks"]),
            "num_runs": int(report["num_runs"]),
            "num_directed_edges": int(report["num_directed_edges"]),
            "num_delegates": int(report["num_delegates"]),
            "block_edges": int(report["block_edges"]),
        },
        "wall_s": {k: float(v) for k, v in sorted(wall.items())},
        "modeled_ms": modeled.as_dict(),
        "counters": _merge_counters(per_source_counters),
        "max_rss_mb": {k: float(v) for k, v in sorted(rss.items())},
    }


def run_suite(
    specs: Iterable[Scenario] | Sequence[Scenario],
    label: str = "",
    quick: bool = False,
    repeats: int = 2,
    out_path=None,
    on_record: Callable[[str, dict], None] | None = None,
    serve_batched: bool = True,
    cluster_hedging: bool = True,
    dyn_incremental: bool = True,
    backend: str | None = None,
    kernels: str | None = None,
    storage: str | None = None,
) -> dict:
    """Run a set of scenarios and assemble (optionally write) one artifact.

    Parameters
    ----------
    specs:
        Scenarios to execute, in order.
    label:
        Free-form snapshot description stored in the artifact.
    quick:
        Recorded in the artifact (CI smoke vs full sweep).
    repeats:
        Traversal passes per source per scenario.
    out_path:
        When given, the artifact is validated and written there as JSON.
    on_record:
        Progress callback invoked with ``(name, record)`` after each scenario.
    serve_batched:
        Serving scenarios only: batched service (default) or the sequential
        baseline (the "before" half of a before/after artifact pair).
    cluster_hedging:
        Cluster scenarios only: hedged serving (default) or the unhedged
        baseline (the "before" half of a tail-latency pair).
    dyn_incremental:
        Dynamic scenarios only: time incremental repair (default) or the
        full-recompute baseline (the "before" half of a pair).
    backend:
        Execution-backend override applied to every scenario (``None`` =
        each scenario's own); recorded per record, never in the spec.
    kernels:
        Kernel-provider spec applied to every scenario (``None`` defers to
        ``$REPRO_KERNELS`` / ``auto``); the resolved name is recorded per
        record, never in the spec.
    storage:
        Adjacency-storage override applied to every scenario (``None``
        defers to each scenario's pin / ``$REPRO_STORAGE``); the storage
        that actually ran is recorded per record, never in the spec.
        Mutating scenarios pin memory regardless.
    """
    from repro.obs.summary import summarize_events
    from repro.obs.tracer import get_tracer

    tracer = get_tracer()
    records: dict[str, dict] = {}
    for spec in specs:
        mark = len(tracer.events) if tracer.enabled else 0
        record = run_scenario(
            spec,
            repeats=repeats,
            serve_batched=serve_batched,
            cluster_hedging=cluster_hedging,
            dyn_incremental=dyn_incremental,
            backend=backend,
            kernels=kernels,
            storage=storage,
        )
        if tracer.enabled:
            # The trace section is diagnostic, never gated: bench compare
            # ignores it, so traced and untraced artifacts stay comparable.
            record["trace"] = summarize_events(tracer.events[mark:])
        records[spec.name] = record
        if on_record is not None:
            on_record(spec.name, record)
    artifact = new_artifact(records, label=label, quick=quick)
    if out_path is not None:
        save_artifact(artifact, out_path)
    return artifact
