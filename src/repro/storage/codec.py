"""Delta + varint compressed adjacency (the ``"compressed"`` storage mode).

The paper stores the nn subgraph with 64-bit global destination ids — the one
part of the partitioning whose memory the delegate split cannot bound.  This
module compresses exactly the *normal-source* subgraphs (nn and nd): within a
CSR row the column ids are sorted ascending and unique, so each row is stored
as its first column followed by strictly-positive gaps, every value LEB128
varint encoded (7 payload bits per byte, high bit = continuation).  Delegate
rows (dn/dd) stay raw, matching the paper's split: delegates are few, their
adjacency is the hot replicated working set, and their 32-bit local ids are
already compact.

Decoding is vectorized and *lazy*: a traversal super-step only touches the
rows in its frontier (forward) or candidate set (backward), so
:meth:`CompressedCSR.decode_rows` materializes a masked
:class:`~repro.graph.csr.CSRGraph` with only those rows populated and hands it
to the unmodified visit kernels via :class:`DecodingProvider` — a
:class:`~repro.exec.providers.KernelProvider` wrapper, so every backend and
provider (NumPy or Numba) runs bit-identically over compressed storage.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exec.providers import KernelProvider
from repro.graph.csr import CSRGraph
from repro.obs.tracer import get_tracer
from repro.utils.timing import now_s

__all__ = [
    "CompressedCSR",
    "DecodingProvider",
    "compress_csr",
    "varint_encode",
    "varint_sizes",
]

#: Largest value the encoder accepts: 9 varint groups of 7 bits.
_MAX_ENCODABLE = (1 << 63) - 1


def varint_sizes(values: np.ndarray) -> np.ndarray:
    """Encoded byte length of every value (vectorized, 1..9 bytes each)."""
    v = np.asarray(values, dtype=np.uint64)
    sizes = np.ones(v.size, dtype=np.int64)
    for k in range(1, 10):
        sizes += v >= (np.uint64(1) << np.uint64(7 * k))
    return sizes


def varint_encode(values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """LEB128-encode non-negative int64 values into a flat byte stream.

    Returns
    -------
    (payload, sizes):
        ``payload`` is the concatenated ``uint8`` varint stream and
        ``sizes[i]`` the byte length of value ``i`` within it.
    """
    v = np.asarray(values, dtype=np.int64)
    if v.size == 0:
        return np.zeros(0, dtype=np.uint8), np.zeros(0, dtype=np.int64)
    if int(v.min()) < 0:
        raise ValueError("varint_encode requires non-negative values")
    u = v.astype(np.uint64)
    sizes = varint_sizes(u)
    ends = np.cumsum(sizes)
    starts = ends - sizes
    out = np.empty(int(ends[-1]), dtype=np.uint8)
    for j in range(int(sizes.max())):
        sel = sizes > j
        byte = ((u[sel] >> np.uint64(7 * j)) & np.uint64(0x7F)).astype(np.uint8)
        byte[(sizes[sel] - 1) > j] |= 0x80
        out[starts[sel] + j] = byte
    return out, sizes


def _varint_decode(buf: np.ndarray) -> np.ndarray:
    """Decode a flat varint byte stream back into int64 values (vectorized).

    Works byte-parallel: continuation bits mark value boundaries, each byte's
    7 payload bits are shifted to their position within their value, and the
    disjoint contributions are summed per value with ``np.add.reduceat``.
    """
    if buf.size == 0:
        return np.zeros(0, dtype=np.int64)
    is_start = np.empty(buf.size, dtype=bool)
    is_start[0] = True
    is_start[1:] = (buf[:-1] & 0x80) == 0
    starts = np.flatnonzero(is_start)
    value_id = np.cumsum(is_start) - 1
    pos = np.arange(buf.size, dtype=np.int64) - starts[value_id]
    contrib = (buf & 0x7F).astype(np.uint64) << (np.uint64(7) * pos.astype(np.uint64))
    return np.add.reduceat(contrib, starts).astype(np.int64)


@dataclass
class CompressedCSR:
    """A CSR whose column stream is stored delta + varint encoded.

    Mirrors the read-side surface of :class:`~repro.graph.csr.CSRGraph` that
    the engine and the bench accounting consume (``num_edges``,
    ``out_degrees``, ``column_dtype``, ``nbytes``); the adjacency itself is
    reached through :meth:`decode_rows`.

    Attributes
    ----------
    payload:
        ``uint8`` varint stream: per row, the first column id raw, then the
        gaps to each following column.
    byte_offsets:
        ``int64`` array of length ``num_rows + 1``; row ``r`` occupies
        ``payload[byte_offsets[r]:byte_offsets[r+1]]``.
    row_offsets:
        Value offsets (identical to the raw CSR's ``row_offsets``), so degree
        queries never touch the payload.
    """

    payload: np.ndarray
    byte_offsets: np.ndarray
    row_offsets: np.ndarray
    num_rows: int
    num_cols: int
    column_dtype: np.dtype
    #: Optional per-edge ``float64`` weights, stored raw in encoded edge
    #: order (per row the columns encode ascending — exactly the raw CSR's
    #: lexsorted order, so the weight stream needs no re-permutation).
    edge_weights: np.ndarray | None = None

    @property
    def num_edges(self) -> int:
        """Number of encoded (directed) edges."""
        return int(self.row_offsets[-1]) if self.row_offsets.size else 0

    def out_degrees(self) -> np.ndarray:
        """Out-degree of every row (free: value offsets are stored raw)."""
        return np.diff(self.row_offsets)

    def nbytes(self) -> int:
        """Stored bytes: payload, both offset arrays, and any weight stream."""
        total = int(self.payload.nbytes + self.byte_offsets.nbytes + self.row_offsets.nbytes)
        if self.edge_weights is not None:
            total += int(self.edge_weights.nbytes)
        return total

    def compression_ratio(self) -> float:
        """Raw column bytes divided by payload bytes (1.0 for empty rows)."""
        raw = self.num_edges * np.dtype(self.column_dtype).itemsize
        return raw / self.payload.nbytes if self.payload.nbytes else 1.0

    def decode_rows(self, rows: np.ndarray) -> CSRGraph:
        """Materialize a masked CSR holding only the requested rows.

        The result has the full ``(num_rows, num_cols)`` shape with the
        requested rows' exact neighbour lists and every other row empty, so
        the unmodified forward/backward kernels — which only ever read the
        frontier or candidate rows they are handed — see bit-identical
        adjacency, degrees and ``edges_examined`` accounting.
        """
        rows = np.unique(np.asarray(rows, dtype=np.int64).ravel())
        empty_w = (
            np.zeros(0, dtype=np.float64) if self.edge_weights is not None else None
        )
        masked = np.zeros(self.num_rows + 1, dtype=np.int64)
        if rows.size == 0:
            return CSRGraph.unchecked(
                masked, np.zeros(0, dtype=self.column_dtype), self.num_rows, self.num_cols,
                edge_weights=empty_w,
            )
        counts = self.row_offsets[rows + 1] - self.row_offsets[rows]
        masked[rows + 1] = counts
        np.cumsum(masked, out=masked)
        live = counts > 0
        rows_nz, counts_nz = rows[live], counts[live]
        if rows_nz.size == 0:
            return CSRGraph.unchecked(
                masked, np.zeros(0, dtype=self.column_dtype), self.num_rows, self.num_cols,
                edge_weights=empty_w,
            )
        byte_counts = self.byte_offsets[rows_nz + 1] - self.byte_offsets[rows_nz]
        total_bytes = int(byte_counts.sum())
        out_starts = np.zeros(rows_nz.size, dtype=np.int64)
        np.cumsum(byte_counts[:-1], out=out_starts[1:])
        span = np.repeat(np.arange(rows_nz.size, dtype=np.int64), byte_counts)
        idx = (
            np.arange(total_bytes, dtype=np.int64)
            - out_starts[span]
            + self.byte_offsets[rows_nz][span]
        )
        values = _varint_decode(np.asarray(self.payload)[idx])
        # Segmented prefix sum turns (first, gap, gap, ...) back into columns.
        cum = np.cumsum(values)
        seg_start = np.zeros(rows_nz.size, dtype=np.int64)
        np.cumsum(counts_nz[:-1], out=seg_start[1:])
        base = cum[seg_start] - values[seg_start]
        columns = (cum - np.repeat(base, counts_nz)).astype(self.column_dtype)
        weights = None
        if self.edge_weights is not None:
            # Weights are stored raw in the same per-row order the columns
            # encode, so a positional gather aligns them with the decode.
            raw_pos = (
                np.arange(columns.size, dtype=np.int64)
                - np.repeat(seg_start, counts_nz)
                + np.repeat(self.row_offsets[rows_nz], counts_nz)
            )
            weights = np.asarray(self.edge_weights)[raw_pos]
        return CSRGraph.unchecked(
            masked, columns, self.num_rows, self.num_cols, edge_weights=weights
        )

    def decode(self) -> CSRGraph:
        """Decode the full adjacency (round-trip testing and export)."""
        return self.decode_rows(np.arange(self.num_rows, dtype=np.int64))


def compress_csr(csr: CSRGraph) -> CompressedCSR:
    """Encode a raw CSR (sorted, duplicate-free rows) into a :class:`CompressedCSR`."""
    if csr.num_cols > _MAX_ENCODABLE:
        raise ValueError("column universe too large for varint encoding")
    ro = np.asarray(csr.row_offsets, dtype=np.int64)
    cols = np.asarray(csr.column_indices, dtype=np.int64)
    lengths = np.diff(ro)
    deltas = np.empty(cols.size, dtype=np.int64)
    if cols.size:
        deltas[0] = cols[0]
        deltas[1:] = cols[1:] - cols[:-1]
        first_positions = ro[:-1][lengths > 0]
        deltas[first_positions] = cols[first_positions]
        if int(deltas.min()) < 0:
            raise ValueError("rows must be sorted ascending with unique columns")
    payload, sizes = varint_encode(deltas)
    byte_cum = np.zeros(cols.size + 1, dtype=np.int64)
    np.cumsum(sizes, out=byte_cum[1:])
    return CompressedCSR(
        payload=payload,
        byte_offsets=byte_cum[ro],
        row_offsets=ro.copy(),
        num_rows=csr.num_rows,
        num_cols=csr.num_cols,
        column_dtype=np.dtype(csr.column_dtype),
        edge_weights=csr.edge_weights,
    )


class DecodingProvider(KernelProvider):
    """Kernel provider wrapper that decodes compressed rows before each visit.

    Wraps any base provider; visit calls whose CSR is a
    :class:`CompressedCSR` first decode exactly the rows the kernel will read
    (the frontier for forward pushes, the candidate set for backward pulls)
    into a masked raw CSR, then delegate.  Every other call passes straight
    through, so raw subgraphs (dn/dd) and all bitmask/filter operations pay
    nothing.  ``name`` mirrors the base provider: the wrapper is a storage
    detail, not a kernels axis — counters and results are identical.
    """

    def __init__(self, base: KernelProvider) -> None:
        self._base = base
        self.name = base.name

    @staticmethod
    def _dense(csr, rows):
        if not isinstance(csr, CompressedCSR):
            return csr
        tracer = get_tracer()
        if not tracer.enabled:
            return csr.decode_rows(rows)
        started = now_s()
        dense = csr.decode_rows(rows)
        tracer.record_span(
            "lazy-decode", cat="storage", start=started, dur=now_s() - started,
            args={"rows": int(len(rows))},
        )
        return dense

    def filter_frontier(self, frontier, out_degrees):
        """Delegate (degree arrays are stored raw in every storage mode)."""
        return self._base.filter_frontier(frontier, out_degrees)

    def forward_visit(self, csr, frontier):
        """Decode the frontier rows, then run the base forward push."""
        return self._base.forward_visit(self._dense(csr, frontier), frontier)

    def weighted_forward_visit(self, csr, frontier):
        """Decode the frontier rows (weights ride along), then delegate."""
        return self._base.weighted_forward_visit(self._dense(csr, frontier), frontier)

    def contrib_visit(self, csr, rows, row_values):
        """Decode the active rows, then run the base contribution scatter."""
        return self._base.contrib_visit(self._dense(csr, rows), rows, row_values)

    def backward_visit(self, reverse_csr, candidates, parent_in_frontier):
        """Decode the candidate rows, then run the base backward pull."""
        return self._base.backward_visit(
            self._dense(reverse_csr, candidates), candidates, parent_in_frontier
        )

    def batched_filter_frontier(self, rows, words, out_degrees):
        """Delegate; no adjacency is touched."""
        return self._base.batched_filter_frontier(rows, words, out_degrees)

    def batched_forward_visit(self, csr, frontier_rows, frontier_words):
        """Decode the frontier rows, then run the base batched push."""
        return self._base.batched_forward_visit(
            self._dense(csr, frontier_rows), frontier_rows, frontier_words
        )

    def batched_backward_visit(self, reverse_csr, candidates, parent_words, wanted_words):
        """Decode the candidate rows, then run the base batched pull."""
        return self._base.batched_backward_visit(
            self._dense(reverse_csr, candidates), candidates, parent_words, wanted_words
        )

    def bitmask_set_many(self, mask, indices):
        """Delegate; bitmasks are storage-independent."""
        return self._base.bitmask_set_many(mask, indices)

    def bitmask_test_many(self, mask, indices):
        """Delegate; bitmasks are storage-independent."""
        return self._base.bitmask_test_many(mask, indices)
