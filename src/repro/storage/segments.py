"""Memory-mapped graph stores: one segment file + a JSON manifest.

A *store* is a directory holding the complete partitioned graph as flat
binary arrays in a single ``graph.bin`` segment (every array 8-byte aligned,
the same packing discipline :class:`repro.exec.shm.SharedGraphStore` uses for
its POSIX shared-memory segment) plus a ``manifest.json`` naming each array's
offset, dtype and shape alongside the partitioning metadata (layout,
threshold, census, per-GPU subgraph shapes).

Loading attaches the file once with ``mmap`` and exposes every array as a
zero-copy :func:`numpy.frombuffer` view, so the Inline and Thread backends
traverse straight out of the page cache; the Process backend ships the same
offsets to its workers as a ``file://`` segment descriptor through the
existing attach/LRU cache in :mod:`repro.exec.shm`.  Compressed stores keep
the nn/nd column streams as varint payloads (:mod:`repro.storage.codec`);
dn/dd and every offset/degree/separation array stay raw in both modes.
"""

from __future__ import annotations

import json
import mmap
import os
from pathlib import Path

import numpy as np

from repro.graph.csr import CSRGraph
from repro.obs.tracer import get_tracer
from repro.partition.delegates import DegreeSeparation, EdgeCategoryCensus
from repro.partition.layout import ClusterLayout
from repro.partition.subgraphs import GPUPartition, PartitionedGraph
from repro.storage.codec import CompressedCSR, compress_csr

__all__ = [
    "MANIFEST_NAME",
    "SEGMENT_NAME",
    "SCHEMA",
    "SCHEMA_VERSION",
    "SCHEMA_VERSION_WEIGHTED",
    "SUPPORTED_VERSIONS",
    "SegmentWriter",
    "StoreHandle",
    "open_store",
    "save_graph_store",
    "load_graph_store",
    "store_graph_descriptor",
]

MANIFEST_NAME = "manifest.json"
SEGMENT_NAME = "graph.bin"
SCHEMA = "repro.storage"
SCHEMA_VERSION = 1
#: Weighted stores carry per-edge weight arrays older readers cannot see;
#: they are written as version 2 so a weight-ignorant build fails with a
#: clear versioned error instead of silently traversing an unweighted view.
#: Unweighted stores stay version 1, byte-identical to earlier builds.
SCHEMA_VERSION_WEIGHTED = 2
SUPPORTED_VERSIONS = (SCHEMA_VERSION, SCHEMA_VERSION_WEIGHTED)

#: The four per-GPU subgraphs, in their fixed on-disk order.
CSR_KEYS = ("nn", "nd", "dn", "dd")
#: Subgraphs with normal-vertex source rows — the only ones ever compressed.
COMPRESSIBLE = ("nn", "nd")

_ALIGN = 8


def _align(offset: int) -> int:
    return (offset + _ALIGN - 1) & ~(_ALIGN - 1)


class SegmentWriter:
    """Append-only writer for a store's ``graph.bin`` segment.

    Arrays are written sequentially (8-byte aligned) and recorded in the
    manifest table; :meth:`append_blocks` streams an array of unknown final
    length from an iterator of blocks, which is how the out-of-core build
    writes column streams without ever materializing them.
    """

    def __init__(self, directory: str | Path) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self._fh = open(self.directory / SEGMENT_NAME, "wb")
        self._offset = 0
        self.arrays: dict[str, dict] = {}

    def _pad(self) -> None:
        aligned = _align(self._offset)
        if aligned != self._offset:
            self._fh.write(b"\x00" * (aligned - self._offset))
            self._offset = aligned

    def add(self, name: str, array: np.ndarray) -> None:
        """Write one in-memory array and record it in the manifest table."""
        if name in self.arrays:
            raise ValueError(f"array {name!r} already written")
        arr = np.ascontiguousarray(array)
        self._pad()
        entry = {
            "offset": self._offset,
            "dtype": arr.dtype.name,
            "shape": list(arr.shape),
        }
        self._fh.write(arr.tobytes())
        self._offset += arr.nbytes
        self.arrays[name] = entry

    def append_blocks(self, name: str, dtype, blocks) -> int:
        """Stream an array from ``blocks`` (an iterable of 1-D chunks).

        Returns the total element count; only one block is resident at a
        time, so the writer's memory stays bounded by the block size.
        """
        if name in self.arrays:
            raise ValueError(f"array {name!r} already written")
        dtype = np.dtype(dtype)
        self._pad()
        offset = self._offset
        count = 0
        for block in blocks:
            arr = np.ascontiguousarray(block, dtype=dtype)
            self._fh.write(arr.tobytes())
            self._offset += arr.nbytes
            count += arr.size
        self.arrays[name] = {"offset": offset, "dtype": dtype.name, "shape": [count]}
        return count

    def finish(self, metadata: dict, version: int = SCHEMA_VERSION) -> None:
        """Close the segment and write ``manifest.json``."""
        self._fh.close()
        manifest = {
            "schema": SCHEMA,
            "version": int(version),
            "arrays": self.arrays,
        }
        manifest.update(metadata)
        path = self.directory / MANIFEST_NAME
        with path.open("w", encoding="utf-8") as fh:
            json.dump(manifest, fh, indent=2)
            fh.write("\n")


class StoreHandle:
    """An attached store: the manifest plus one long-lived read-only mmap."""

    def __init__(self, directory: str | Path) -> None:
        self.directory = Path(directory)
        manifest_path = self.directory / MANIFEST_NAME
        if not manifest_path.exists():
            raise FileNotFoundError(f"{self.directory} is not a graph store (no {MANIFEST_NAME})")
        with get_tracer().span("mmap-attach", cat="storage") as span:
            with manifest_path.open("r", encoding="utf-8") as fh:
                self.manifest = json.load(fh)
            if self.manifest.get("schema") != SCHEMA:
                raise ValueError(f"{manifest_path} has schema {self.manifest.get('schema')!r}")
            if self.manifest.get("version") not in SUPPORTED_VERSIONS:
                raise ValueError(
                    f"unsupported store version {self.manifest.get('version')!r} "
                    f"(this build reads versions {SUPPORTED_VERSIONS})"
                )
            self.segment_path = self.directory / SEGMENT_NAME
            self._file = open(self.segment_path, "rb")
            size = os.fstat(self._file.fileno()).st_size
            self._mm = (
                mmap.mmap(self._file.fileno(), size, access=mmap.ACCESS_READ) if size else None
            )
            span.annotate(store=str(self.directory), bytes=size)

    def array(self, name: str) -> np.ndarray:
        """Zero-copy view of a named array in the segment."""
        entry = self.manifest["arrays"][name]
        shape = tuple(entry["shape"])
        count = int(np.prod(shape)) if shape else 1
        if count == 0:
            return np.zeros(shape, dtype=entry["dtype"])
        return np.frombuffer(
            self._mm, dtype=entry["dtype"], count=count, offset=entry["offset"]
        ).reshape(shape)

    def array_offset(self, name: str) -> int:
        """Byte offset of a named array within ``graph.bin``."""
        return int(self.manifest["arrays"][name]["offset"])

    def close(self) -> None:
        """Release the mapping (views created earlier keep it alive)."""
        if self._mm is not None:
            try:
                self._mm.close()
            except BufferError:
                pass
            self._mm = None
        self._file.close()


#: Attached stores by resolved path: loads of the same store share one mmap,
#: and the handle stays alive as long as the process (views reference it).
_HANDLES: dict[str, StoreHandle] = {}


def open_store(directory: str | Path) -> StoreHandle:
    """Attach a store directory (cached: one mmap per store per process)."""
    key = str(Path(directory).resolve())
    handle = _HANDLES.get(key)
    if handle is None:
        handle = StoreHandle(key)
        _HANDLES[key] = handle
    return handle


def _census_metadata(census: EdgeCategoryCensus) -> dict:
    return {
        "threshold": census.threshold,
        "num_vertices": census.num_vertices,
        "num_edges": census.num_edges,
        "num_delegates": census.num_delegates,
        "nn_edges": census.nn_edges,
        "nd_edges": census.nd_edges,
        "dn_edges": census.dn_edges,
        "dd_edges": census.dd_edges,
    }


def _csr_meta(name: str, csr) -> dict:
    meta = {
        "num_rows": int(csr.num_rows),
        "num_cols": int(csr.num_cols),
        "num_edges": int(csr.num_edges),
        "dtype": np.dtype(csr.column_dtype).name,
        "kind": "compressed" if isinstance(csr, CompressedCSR) else "raw",
    }
    if getattr(csr, "edge_weights", None) is not None:
        meta["weighted"] = True
    return meta


def save_graph_store(
    graph: PartitionedGraph, directory: str | Path, storage: str = "mmap"
) -> Path:
    """Write an in-memory :class:`PartitionedGraph` as a store directory.

    ``storage`` selects the on-disk flavour: ``"mmap"`` keeps every column
    stream raw; ``"compressed"`` varint-encodes the nn/nd streams.  The
    streaming builder (:mod:`repro.storage.extsort`) writes the identical
    format without ever holding the graph in memory; this function is the
    in-memory counterpart used by runtime conversion and round-trip tests.
    """
    if storage not in ("mmap", "compressed"):
        raise ValueError(f"storage must be 'mmap' or 'compressed', got {storage!r}")
    if getattr(graph, "storage", "memory") != "memory":
        raise ValueError("save_graph_store expects an in-memory graph")
    directory = Path(directory)
    writer = SegmentWriter(directory)
    sep = graph.separation
    writer.add("sep.degrees", sep.degrees)
    writer.add("sep.is_delegate", sep.is_delegate)
    writer.add("sep.delegate_vertices", sep.delegate_vertices)
    writer.add("sep.delegate_id_of", sep.delegate_id_of)

    gpus_meta: list[dict] = []
    for g, part in enumerate(graph.gpus):
        csr_meta: dict[str, dict] = {}
        for key in CSR_KEYS:
            csr = getattr(part, key)
            stored = csr
            if storage == "compressed" and key in COMPRESSIBLE:
                stored = compress_csr(csr)
            csr_meta[key] = _csr_meta(key, stored)
            prefix = f"g{g}.{key}"
            writer.add(f"{prefix}.ro", np.asarray(stored.row_offsets, dtype=np.int64))
            if isinstance(stored, CompressedCSR):
                writer.add(f"{prefix}.bo", stored.byte_offsets)
                writer.add(f"{prefix}.pl", stored.payload)
            else:
                writer.add(f"{prefix}.ci", stored.column_indices)
            if getattr(stored, "edge_weights", None) is not None:
                writer.add(
                    f"{prefix}.w", np.asarray(stored.edge_weights, dtype=np.float64)
                )
        writer.add(f"g{g}.local_is_normal", part.local_is_normal)
        writer.add(f"g{g}.nd_source_list", part.nd_source_list)
        writer.add(f"g{g}.dn_source_mask", part.dn_source_mask)
        writer.add(f"g{g}.dd_source_mask", part.dd_source_mask)
        gpus_meta.append({"num_local": int(part.num_local), "csrs": csr_meta})

    writer.finish(
        {
            "storage": storage,
            "layout": graph.layout.notation(),
            "threshold": int(graph.threshold),
            "num_vertices": int(graph.num_vertices),
            "num_directed_edges": int(graph.num_directed_edges),
            "census": _census_metadata(graph.census),
            "gpus": gpus_meta,
        },
        version=SCHEMA_VERSION_WEIGHTED if graph.is_weighted else SCHEMA_VERSION,
    )
    return directory


def _load_csr(handle: StoreHandle, g: int, key: str, meta: dict):
    prefix = f"g{g}.{key}"
    ro = handle.array(f"{prefix}.ro")
    weights = handle.array(f"{prefix}.w") if meta.get("weighted") else None
    if meta["kind"] == "compressed":
        return CompressedCSR(
            payload=handle.array(f"{prefix}.pl"),
            byte_offsets=handle.array(f"{prefix}.bo"),
            row_offsets=ro,
            num_rows=meta["num_rows"],
            num_cols=meta["num_cols"],
            column_dtype=np.dtype(meta["dtype"]),
            edge_weights=weights,
        )
    return CSRGraph.unchecked(
        ro,
        handle.array(f"{prefix}.ci"),
        meta["num_rows"],
        meta["num_cols"],
        edge_weights=weights,
    )


def load_graph_store(directory: str | Path) -> PartitionedGraph:
    """Attach a store and rebuild the :class:`PartitionedGraph` over mmap views.

    Every array — subgraph offsets and columns, separation, per-GPU masks —
    is a read-only view into the shared mapping; nothing is copied.  The
    returned graph's ``storage`` records the store flavour and
    ``storage_path`` the directory, which is how the execution layer picks
    zero-copy descriptors (process backend) and the decode wrapper
    (compressed stores).
    """
    handle = open_store(directory)
    manifest = handle.manifest
    layout = ClusterLayout.from_notation(manifest["layout"])
    census = EdgeCategoryCensus(**manifest["census"])
    separation = DegreeSeparation(
        threshold=int(manifest["threshold"]),
        degrees=handle.array("sep.degrees"),
        is_delegate=handle.array("sep.is_delegate"),
        delegate_vertices=handle.array("sep.delegate_vertices"),
        delegate_id_of=handle.array("sep.delegate_id_of"),
    )
    d = separation.num_delegates
    gpus: list[GPUPartition] = []
    for g, meta in enumerate(manifest["gpus"]):
        csrs = {key: _load_csr(handle, g, key, meta["csrs"][key]) for key in CSR_KEYS}
        gpus.append(
            GPUPartition(
                flat_gpu=g,
                layout=layout,
                num_local=int(meta["num_local"]),
                num_delegates=d,
                local_is_normal=handle.array(f"g{g}.local_is_normal"),
                nn=csrs["nn"],
                nd=csrs["nd"],
                dn=csrs["dn"],
                dd=csrs["dd"],
                nd_source_list=handle.array(f"g{g}.nd_source_list"),
                dn_source_mask=handle.array(f"g{g}.dn_source_mask"),
                dd_source_mask=handle.array(f"g{g}.dd_source_mask"),
            )
        )
    return PartitionedGraph(
        layout=layout,
        threshold=int(manifest["threshold"]),
        num_vertices=int(manifest["num_vertices"]),
        num_directed_edges=int(manifest["num_directed_edges"]),
        separation=separation,
        census=census,
        gpus=gpus,
        storage=manifest["storage"],
        storage_path=str(Path(directory)),
    )


def store_graph_descriptor(directory: str | Path) -> dict:
    """Build the process-backend graph descriptor for a store.

    Raw subgraphs use the same 6-tuple entries the shared-memory path ships
    (``(ro_offset, num_rows, ci_offset, num_edges, dtype, num_cols)``);
    compressed subgraphs use a ``("z", ...)`` tagged entry carrying the
    payload and byte-offset locations instead of a column array.  The
    segment name is a ``file://`` URI that
    :class:`repro.exec.shm.SegmentCache` attaches by mmap rather than by
    POSIX shared memory — workers reuse the identical LRU/view machinery.
    """
    handle = open_store(directory)
    entries: dict = {}
    compressed = False
    for g, meta in enumerate(handle.manifest["gpus"]):
        for key in CSR_KEYS:
            cmeta = meta["csrs"][key]
            prefix = f"g{g}.{key}"
            ro_off = handle.array_offset(f"{prefix}.ro")
            # Weighted subgraphs append the weight-array offset; readers key
            # off the entry length, so unweighted descriptors are unchanged.
            w_tail = (
                (handle.array_offset(f"{prefix}.w"),) if cmeta.get("weighted") else ()
            )
            if cmeta["kind"] == "compressed":
                compressed = True
                entries[(g, key)] = (
                    "z",
                    ro_off,
                    handle.array_offset(f"{prefix}.bo"),
                    handle.array_offset(f"{prefix}.pl"),
                    int(handle.manifest["arrays"][f"{prefix}.pl"]["shape"][0]),
                    cmeta["num_rows"],
                    cmeta["num_edges"],
                    cmeta["dtype"],
                    cmeta["num_cols"],
                ) + w_tail
            else:
                entries[(g, key)] = (
                    ro_off,
                    cmeta["num_rows"],
                    handle.array_offset(f"{prefix}.ci"),
                    cmeta["num_edges"],
                    cmeta["dtype"],
                    cmeta["num_cols"],
                ) + w_tail
    return {
        "segment": f"file://{handle.segment_path}",
        "csrs": entries,
        "compressed": compressed,
    }
