"""Storage subsystem: out-of-core builds, mmap-backed CSR, compressed adjacency.

Three storage modes cover the paper's memory story end to end:

``memory``
    Plain in-RAM ndarrays — the default, what every PR before this one used.
``mmap``
    The partitioned graph lives in a *store* directory (one ``graph.bin``
    segment + ``manifest.json``) and every array is a zero-copy ``mmap`` view;
    the Process backend attaches the same file through the shared-memory
    segment cache (:mod:`repro.exec.shm`).
``compressed``
    Same store layout, but the normal-source column streams (nn/nd) are
    delta+varint encoded and decoded lazily per super-step
    (:mod:`repro.storage.codec`); delegate subgraphs stay raw.

The mode is a **run-time execution axis** like the backend: it is recorded in
every bench artifact record but never part of a scenario's identity, and
traversal counters are bit-identical across all three modes by construction.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path

from repro.partition.subgraphs import PartitionedGraph
from repro.storage.codec import (
    CompressedCSR,
    DecodingProvider,
    compress_csr,
    varint_encode,
    varint_sizes,
)
from repro.storage.edgestream import (
    EdgeChunkWriter,
    chunks_from_edgelist,
    iter_edge_chunks,
    read_chunk_meta,
    write_edge_chunks,
)
from repro.storage.extsort import external_build
from repro.storage.segments import (
    StoreHandle,
    load_graph_store,
    open_store,
    save_graph_store,
    store_graph_descriptor,
)

__all__ = [
    "STORAGE_NAMES",
    "STORAGE_ENV_VAR",
    "default_storage_name",
    "apply_storage",
    "CompressedCSR",
    "DecodingProvider",
    "compress_csr",
    "varint_encode",
    "varint_sizes",
    "EdgeChunkWriter",
    "chunks_from_edgelist",
    "iter_edge_chunks",
    "read_chunk_meta",
    "write_edge_chunks",
    "external_build",
    "StoreHandle",
    "load_graph_store",
    "open_store",
    "save_graph_store",
    "store_graph_descriptor",
]

#: Valid values of the storage axis, in documentation order.
STORAGE_NAMES = ("memory", "mmap", "compressed")

#: Environment variable consulted when no explicit storage is requested.
STORAGE_ENV_VAR = "REPRO_STORAGE"


def default_storage_name() -> str:
    """Resolve the ambient storage mode: ``$REPRO_STORAGE`` or ``memory``."""
    name = os.environ.get(STORAGE_ENV_VAR, "").strip().lower()
    if not name:
        return "memory"
    if name not in STORAGE_NAMES:
        raise ValueError(
            f"{STORAGE_ENV_VAR}={name!r} is not one of {', '.join(STORAGE_NAMES)}"
        )
    return name


def apply_storage(
    graph: PartitionedGraph, storage: str, path: str | Path | None = None
) -> PartitionedGraph:
    """Convert an in-memory graph to the requested storage mode.

    ``memory`` returns the graph unchanged.  For ``mmap``/``compressed`` the
    graph is saved as a store (under ``path``, or a fresh temporary directory
    kept for the life of the process) and loaded back as zero-copy views.
    Non-memory graphs cannot be re-converted — reload from their store or
    rebuild instead.
    """
    if storage not in STORAGE_NAMES:
        raise ValueError(f"storage must be one of {', '.join(STORAGE_NAMES)}, got {storage!r}")
    if storage == "memory":
        if getattr(graph, "storage", "memory") != "memory":
            raise ValueError(
                "cannot convert a store-backed graph back to memory storage; "
                "rebuild the graph instead"
            )
        return graph
    if getattr(graph, "storage", "memory") != "memory":
        raise ValueError(
            f"graph is already {graph.storage}-backed (store: {graph.storage_path}); "
            "conversion starts from memory storage"
        )
    directory = Path(path) if path is not None else Path(tempfile.mkdtemp(prefix="repro-store-"))
    save_graph_store(graph, directory, storage=storage)
    return load_graph_store(directory)
