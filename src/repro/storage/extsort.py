"""External-memory graph build: chunked sort, k-way merge, on-disk CSR.

:func:`external_build` turns a stream of raw directed edge chunks into a
complete partitioned graph store (:mod:`repro.storage.segments`) while keeping
edge-array memory bounded by the block size — the full edge list is never
resident.  The passes:

1. **ingest** — per chunk: apply the deterministic vertex-hash permutation,
   drop self loops, emit both edge directions as packed ``src * n + dst``
   keys, sort + dedup the chunk, write it as a sorted *run* file.
2. **merge** — vectorized k-way merge of all runs with global dedup,
   producing one sorted duplicate-free key file and the exact out-degree
   array (the same ``bincount`` in-memory preparation computes).
3. **threshold** *(only when ``TH`` is not given)* — one more streamed pass
   replicating :func:`repro.partition.delegates.suggest_threshold` candidate
   for candidate, so the streaming build picks the identical ``TH``.
4. **distribute** — per sorted block: run the unmodified Algorithm 1
   distributor and append each edge's column id to its ``(gpu, category)``
   bucket file.  Because the key stream is globally sorted and every
   row/column transform in the partition layer is monotone, each bucket file
   arrives exactly in final CSR order — no second sort exists anywhere.
5. **assemble** — write the store segment: row offsets from the accumulated
   per-row degree counts, column streams copied (or delta+varint encoded, for
   compressed stores) block-by-block from the bucket files.

The result is **bit-identical** to ``build_partitions`` on the same prepared
edge list — preparation (doubling, dedup, hashing) commutes with chunking
because relabeling is a bijection and dedup is a set operation.  The
equivalence is enforced by tests, and it is what makes the cross-storage
counter gates exact rather than approximate.
"""

from __future__ import annotations

import shutil
from pathlib import Path
from typing import Iterable, Iterator

import numpy as np

from repro.graph.edgelist import EdgeList
from repro.partition.delegates import (
    DegreeSeparation,
    EdgeCategoryCensus,
    threshold_candidates,
)
from repro.partition.distributor import EDGE_CATEGORIES, distribute_edges
from repro.partition.layout import ClusterLayout
from repro.obs.tracer import get_tracer
from repro.storage.codec import varint_encode, varint_sizes
from repro.storage.segments import SegmentWriter, _census_metadata
from repro.utils.rng import deterministic_hash_permutation
from repro.utils.timing import now_s

__all__ = ["external_build", "DEFAULT_BLOCK_EDGES"]

#: Default number of edges processed per block (= peak resident edge count).
DEFAULT_BLOCK_EDGES = 1 << 20

_CSR_KEYS = ("nn", "nd", "dn", "dd")
_COMPRESSIBLE = ("nn", "nd")


# --------------------------------------------------------------------------- #
# Sorted-run reader for the k-way merge
# --------------------------------------------------------------------------- #
class _RunReader:
    """Buffered reader over one sorted ``int64`` run file."""

    def __init__(self, path: Path, block_edges: int) -> None:
        self._fh = open(path, "rb")
        self._block_bytes = block_edges * 8
        self.buffer = np.zeros(0, dtype=np.int64)
        self._pos = 0
        self._refill()

    def _refill(self) -> None:
        data = self._fh.read(self._block_bytes)
        self.buffer = np.frombuffer(data, dtype=np.int64)
        self._pos = 0
        if not data:
            self._fh.close()

    @property
    def exhausted(self) -> bool:
        return self.buffer.size == 0

    def take_upto(self, bound: int) -> np.ndarray:
        """Consume and return every unread buffered key ``<= bound``."""
        hi = int(np.searchsorted(self.buffer[self._pos :], bound, side="right")) + self._pos
        out = self.buffer[self._pos : hi]
        self._pos = hi
        if self._pos >= self.buffer.size:
            self._refill()
        return out


def _iter_blocks(path: Path, dtype, block_elems: int) -> Iterator[np.ndarray]:
    """Stream a flat binary array file in blocks of ``block_elems`` elements."""
    itemsize = np.dtype(dtype).itemsize
    with open(path, "rb") as fh:
        while True:
            data = fh.read(block_elems * itemsize)
            if not data:
                return
            yield np.frombuffer(data, dtype=dtype)


# --------------------------------------------------------------------------- #
# Streamed threshold suggestion (mirrors suggest_threshold exactly)
# --------------------------------------------------------------------------- #
def _stream_suggest_threshold(
    keys_path: Path,
    degrees: np.ndarray,
    num_vertices: int,
    num_edges: int,
    num_gpus: int,
    block_edges: int,
    max_delegate_factor: float = 4.0,
    max_nn_fraction: float = 0.10,
) -> int:
    max_deg = int(degrees.max()) if degrees.size else 0
    cands = threshold_candidates(max_deg)
    nn_counts = np.zeros(cands.size, dtype=np.int64)
    n = np.int64(num_vertices)
    if num_edges:
        for keys in _iter_blocks(keys_path, np.int64, block_edges):
            deg_src = degrees[keys // n]
            deg_dst = degrees[keys % n]
            for ci, th in enumerate(cands):
                nn_counts[ci] += int(np.count_nonzero((deg_src <= th) & (deg_dst <= th)))
    delegate_budget = max_delegate_factor * num_vertices / num_gpus
    best_th: int | None = None
    best_violation = np.inf
    for ci, th in enumerate(cands):
        d = int(np.count_nonzero(degrees > th))
        nn_frac = nn_counts[ci] / num_edges if num_edges else 0.0
        if d <= delegate_budget and nn_frac <= max_nn_fraction:
            return int(th)
        violation = max(0.0, (d - delegate_budget) / max(delegate_budget, 1.0)) + max(
            0.0, (nn_frac - max_nn_fraction) / max(max_nn_fraction, 1e-12)
        )
        if violation < best_violation:
            best_violation = violation
            best_th = int(th)
    assert best_th is not None
    return best_th


# --------------------------------------------------------------------------- #
# Compressed-column assembly helpers
# --------------------------------------------------------------------------- #
def _row_blocks(row_offsets: np.ndarray, block_edges: int) -> Iterator[tuple[int, int]]:
    """Yield row ranges whose edge counts stay near ``block_edges`` (aligned
    to row boundaries, so delta encoding never splits a row)."""
    num_rows = row_offsets.size - 1
    r0 = 0
    while r0 < num_rows:
        r1 = int(np.searchsorted(row_offsets, row_offsets[r0] + block_edges, side="right")) - 1
        r1 = min(max(r1, r0 + 1), num_rows)
        yield r0, r1
        r0 = r1


def _delta_block(cols: np.ndarray, ro_local: np.ndarray) -> np.ndarray:
    """Per-row delta transform of a row-aligned column block (first raw)."""
    deltas = np.empty(cols.size, dtype=np.int64)
    if cols.size:
        deltas[0] = cols[0]
        deltas[1:] = cols[1:] - cols[:-1]
        lengths = np.diff(ro_local)
        firsts = ro_local[:-1][lengths > 0]
        deltas[firsts] = cols[firsts]
        if int(deltas.min()) < 0:
            raise ValueError("bucket columns are not in sorted CSR order")
    return deltas


def _iter_bucket_row_blocks(
    path: Path, dtype, row_offsets: np.ndarray, block_edges: int
) -> Iterator[tuple[np.ndarray, np.ndarray]]:
    """Yield ``(cols, ro_local)`` per row-aligned block of a bucket file."""
    itemsize = np.dtype(dtype).itemsize
    with open(path, "rb") as fh:
        for r0, r1 in _row_blocks(row_offsets, block_edges):
            count = int(row_offsets[r1] - row_offsets[r0])
            data = fh.read(count * itemsize)
            cols = np.frombuffer(data, dtype=dtype).astype(np.int64)
            yield cols, row_offsets[r0 : r1 + 1] - row_offsets[r0]


# --------------------------------------------------------------------------- #
# The build driver
# --------------------------------------------------------------------------- #
def external_build(
    chunks: Iterable[tuple[np.ndarray, np.ndarray]],
    num_vertices: int,
    layout: ClusterLayout,
    out: str | Path,
    threshold: int | None = None,
    storage: str = "mmap",
    hash_seed: int | None = 1,
    block_edges: int = DEFAULT_BLOCK_EDGES,
    workdir: str | Path | None = None,
    keep_scratch: bool = False,
) -> tuple[Path, dict]:
    """Build a graph store out of core from raw directed edge chunks.

    Parameters
    ----------
    chunks:
        Iterable of raw directed ``(src, dst)`` chunk pairs (generator
        output, *before* preparation: doubling, dedup and hashing happen
        here, streamed).
    num_vertices:
        Vertex universe size ``n``.
    layout:
        Cluster geometry to partition for.
    out:
        Store directory to create.
    threshold:
        Degree threshold ``TH``; ``None`` replays the paper's tuning rule
        over the streamed degree data.
    storage:
        ``"mmap"`` or ``"compressed"`` — the store flavour to write.
    hash_seed:
        Vertex-permutation seed (``None`` skips relabeling), matching the
        ``hash_seed`` of :meth:`EdgeList.prepared`.
    block_edges:
        Resident edge budget per pass; peak memory scales with this, never
        with the total edge count.
    workdir:
        Scratch directory for runs and buckets (default ``out``/scratch,
        removed afterwards unless ``keep_scratch``).

    Returns
    -------
    (store_path, report):
        The store directory and a report dict with per-phase walls
        (``ingest``/``merge``/``threshold``/``distribute``/``assemble``),
        the chosen threshold and the edge-category census.
    """
    if storage not in ("mmap", "compressed"):
        raise ValueError(f"storage must be 'mmap' or 'compressed', got {storage!r}")
    if block_edges < 1:
        raise ValueError("block_edges must be >= 1")
    n = int(num_vertices)
    if n and n > (np.iinfo(np.int64).max // max(n, 1)):
        raise ValueError(f"vertex universe {n} too large for packed-key external sort")
    out = Path(out)
    scratch = Path(workdir) if workdir is not None else out / "scratch"
    scratch.mkdir(parents=True, exist_ok=True)
    walls: dict[str, float] = {}
    n64 = np.int64(n)

    # Pass 1: ingest — prepare each chunk independently into a sorted run.
    t0 = now_s()
    perm = deterministic_hash_permutation(n, seed=hash_seed) if hash_seed is not None else None
    runs: list[Path] = []
    num_chunks = 0
    for chunk in chunks:
        if len(chunk) != 2:
            raise ValueError(
                "external_build does not support weighted edge chunks: the "
                "packed-key sort carries no weight stream.  Build weighted "
                "graphs in memory (build_partitions + save_graph_store) or "
                "drop weights_seed from the generator."
            )
        src, dst = chunk
        num_chunks += 1
        src = np.asarray(src, dtype=np.int64).ravel()
        dst = np.asarray(dst, dtype=np.int64).ravel()
        if perm is not None:
            src = perm[src]
            dst = perm[dst]
        keep = src != dst
        src, dst = src[keep], dst[keep]
        if src.size == 0:
            continue
        keys = np.unique(np.concatenate([src * n64 + dst, dst * n64 + src]))
        path = scratch / f"run_{len(runs):05d}.bin"
        with open(path, "wb") as fh:
            fh.write(keys.tobytes())
        runs.append(path)
    walls["ingest"] = now_s() - t0
    get_tracer().record_span(
        "extsort-ingest", cat="storage", start=t0, dur=walls["ingest"]
    )

    # Pass 2: merge — global sorted dedup + exact out-degree accumulation.
    t0 = now_s()
    degrees = np.zeros(n, dtype=np.int64)
    keys_path = scratch / "keys.bin"
    num_edges = 0
    with open(keys_path, "wb") as out_fh:
        readers = [_RunReader(p, block_edges) for p in runs]
        readers = [r for r in readers if not r.exhausted]
        while readers:
            bound = min(int(r.buffer[-1]) for r in readers)
            merged = np.unique(np.concatenate([r.take_upto(bound) for r in readers]))
            degrees += np.bincount(merged // n64, minlength=n)
            out_fh.write(merged.tobytes())
            num_edges += merged.size
            readers = [r for r in readers if not r.exhausted]
    walls["merge"] = now_s() - t0
    get_tracer().record_span(
        "extsort-merge", cat="storage", start=t0, dur=walls["merge"]
    )

    # Pass 3 (optional): replay the paper's threshold tuning rule, streamed.
    t0 = now_s()
    if threshold is None:
        threshold = _stream_suggest_threshold(
            keys_path, degrees, n, num_edges, layout.num_gpus, block_edges
        )
    walls["threshold"] = now_s() - t0
    get_tracer().record_span(
        "extsort-threshold", cat="storage", start=t0, dur=walls["threshold"]
    )

    is_delegate = degrees > threshold
    delegate_vertices = np.flatnonzero(is_delegate).astype(np.int64)
    delegate_id_of = np.full(n, -1, dtype=np.int64)
    delegate_id_of[delegate_vertices] = np.arange(delegate_vertices.size, dtype=np.int64)
    separation = DegreeSeparation(
        threshold=int(threshold),
        degrees=degrees,
        is_delegate=is_delegate,
        delegate_vertices=delegate_vertices,
        delegate_id_of=delegate_id_of,
    )
    d = separation.num_delegates
    p = layout.num_gpus

    # Pass 4: distribute — Algorithm 1 per block, columns appended per bucket.
    # The sorted key stream + monotone row/column transforms mean each bucket
    # file is already in final CSR order as it lands on disk.
    t0 = now_s()
    num_local = {g: layout.num_local_vertices(g, n) for g in range(p)}
    bucket_rows = {
        (g, key): np.zeros(num_local[g] if key in ("nn", "nd") else d, dtype=np.int64)
        for g in range(p)
        for key in _CSR_KEYS
    }
    bucket_dtype = {key: np.int64 if key == "nn" else np.int32 for key in _CSR_KEYS}
    bucket_paths = {
        (g, key): scratch / f"bucket_g{g}_{key}.bin" for g in range(p) for key in _CSR_KEYS
    }
    bucket_fh = {bk: open(path, "wb") for bk, path in bucket_paths.items()}
    cat_totals = np.zeros(4, dtype=np.int64)
    try:
        for keys in _iter_blocks(keys_path, np.int64, block_edges):
            src = keys // n64
            dst = keys % n64
            assignment = distribute_edges(EdgeList(src, dst, n), separation, layout)
            cat_totals += np.bincount(assignment.category, minlength=4)
            for g in range(p):
                mine = assignment.owner == g
                for key, code in EDGE_CATEGORIES.items():
                    sel = mine & (assignment.category == code)
                    if not np.any(sel):
                        continue
                    s, t = src[sel], dst[sel]
                    if key == "nn":
                        rows, cols = s // p, t
                    elif key == "nd":
                        rows, cols = s // p, delegate_id_of[t]
                    elif key == "dn":
                        rows, cols = delegate_id_of[s], t // p
                    else:
                        rows, cols = delegate_id_of[s], delegate_id_of[t]
                    bucket_rows[g, key] += np.bincount(
                        rows, minlength=bucket_rows[g, key].size
                    )
                    bucket_fh[g, key].write(
                        np.ascontiguousarray(cols, dtype=bucket_dtype[key]).tobytes()
                    )
    finally:
        for fh in bucket_fh.values():
            fh.close()
    walls["distribute"] = now_s() - t0
    get_tracer().record_span(
        "extsort-distribute", cat="storage", start=t0, dur=walls["distribute"]
    )

    census = EdgeCategoryCensus(
        threshold=int(threshold),
        num_vertices=n,
        num_edges=num_edges,
        num_delegates=d,
        nn_edges=int(cat_totals[EDGE_CATEGORIES["nn"]]),
        nd_edges=int(cat_totals[EDGE_CATEGORIES["nd"]]),
        dn_edges=int(cat_totals[EDGE_CATEGORIES["dn"]]),
        dd_edges=int(cat_totals[EDGE_CATEGORIES["dd"]]),
    )

    # Pass 5: assemble — the store segment, in the same array layout the
    # in-memory saver (save_graph_store) produces.
    t0 = now_s()
    writer = SegmentWriter(out)
    writer.add("sep.degrees", degrees)
    writer.add("sep.is_delegate", is_delegate)
    writer.add("sep.delegate_vertices", delegate_vertices)
    writer.add("sep.delegate_id_of", delegate_id_of)
    gpus_meta: list[dict] = []
    for g in range(p):
        csr_meta: dict[str, dict] = {}
        for key in _CSR_KEYS:
            rows_arr = bucket_rows[g, key]
            nrows = rows_arr.size
            ncols = _bucket_num_cols(key, n, d, num_local[g])
            ro = np.zeros(nrows + 1, dtype=np.int64)
            np.cumsum(rows_arr, out=ro[1:])
            dtype = np.dtype(bucket_dtype[key])
            kind = "compressed" if storage == "compressed" and key in _COMPRESSIBLE else "raw"
            csr_meta[key] = {
                "num_rows": int(nrows),
                "num_cols": int(ncols),
                "num_edges": int(ro[-1]),
                "dtype": dtype.name,
                "kind": kind,
            }
            prefix = f"g{g}.{key}"
            writer.add(f"{prefix}.ro", ro)
            path = bucket_paths[g, key]
            if kind == "compressed":
                _assemble_compressed(writer, prefix, path, dtype, ro, block_edges)
            else:
                writer.append_blocks(
                    f"{prefix}.ci", dtype, _iter_blocks(path, dtype, block_edges)
                )
        owned = layout.owned_vertices(g, n)
        writer.add(
            f"g{g}.local_is_normal",
            ~is_delegate[owned] if num_local[g] else np.zeros(0, dtype=bool),
        )
        writer.add(
            f"g{g}.nd_source_list",
            np.flatnonzero(bucket_rows[g, "nd"] > 0).astype(np.int64),
        )
        writer.add(
            f"g{g}.dn_source_mask",
            (bucket_rows[g, "dn"] > 0) if d else np.zeros(0, dtype=bool),
        )
        writer.add(
            f"g{g}.dd_source_mask",
            (bucket_rows[g, "dd"] > 0) if d else np.zeros(0, dtype=bool),
        )
        gpus_meta.append({"num_local": int(num_local[g]), "csrs": csr_meta})
    writer.finish(
        {
            "storage": storage,
            "layout": layout.notation(),
            "threshold": int(threshold),
            "num_vertices": n,
            "num_directed_edges": int(num_edges),
            "census": _census_metadata(census),
            "gpus": gpus_meta,
        }
    )
    walls["assemble"] = now_s() - t0
    get_tracer().record_span(
        "extsort-assemble", cat="storage", start=t0, dur=walls["assemble"]
    )

    if not keep_scratch:
        shutil.rmtree(scratch, ignore_errors=True)

    report = {
        "walls": walls,
        "storage": storage,
        "store_path": str(out),
        "threshold": int(threshold),
        "num_vertices": n,
        "num_directed_edges": int(num_edges),
        "num_delegates": d,
        "num_chunks": num_chunks,
        "num_runs": len(runs),
        "block_edges": int(block_edges),
        "census": census.as_dict(),
    }
    return out, report


def _bucket_num_cols(key: str, n: int, d: int, num_local: int) -> int:
    """Column-universe size per subgraph, mirroring ``_build_gpu_partition``."""
    if key == "nn":
        return n
    if key == "dn":
        return num_local
    return d  # nd / dd: delegate ids (0 when there are no delegates)


def _assemble_compressed(
    writer: SegmentWriter,
    prefix: str,
    bucket_path: Path,
    dtype: np.dtype,
    ro: np.ndarray,
    block_edges: int,
) -> None:
    """Two-pass varint assembly of one bucket: byte offsets, then payload."""
    num_rows = ro.size - 1
    row_bytes = np.zeros(num_rows, dtype=np.int64)
    r0 = 0
    for cols, ro_local in _iter_bucket_row_blocks(bucket_path, dtype, ro, block_edges):
        nrows_blk = ro_local.size - 1
        sizes = varint_sizes(_delta_block(cols, ro_local))
        csizes = np.zeros(sizes.size + 1, dtype=np.int64)
        np.cumsum(sizes, out=csizes[1:])
        row_bytes[r0 : r0 + nrows_blk] = csizes[ro_local[1:]] - csizes[ro_local[:-1]]
        r0 += nrows_blk
    byte_offsets = np.zeros(num_rows + 1, dtype=np.int64)
    np.cumsum(row_bytes, out=byte_offsets[1:])
    writer.add(f"{prefix}.bo", byte_offsets)

    def payload_blocks():
        for cols, ro_local in _iter_bucket_row_blocks(bucket_path, dtype, ro, block_edges):
            payload, _ = varint_encode(_delta_block(cols, ro_local))
            yield payload

    writer.append_blocks(f"{prefix}.pl", np.uint8, payload_blocks())
