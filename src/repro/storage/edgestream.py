"""Binary edge-chunk spools: generator output on disk, fixed-size pieces.

The out-of-core build never holds a full edge list; its unit of work is an
*edge chunk* — a bounded ``(src, dst)`` pair of ``int64`` arrays.  This module
moves chunks between generators, disk and the external-sort builder:

* :class:`EdgeChunkWriter` spools any stream of edges into numbered chunk
  files (``chunk_00000.bin`` …, each holding at most ``chunk_edges`` edges as
  interleaved ``int64`` pairs) plus a ``chunks.json`` header;
* :func:`iter_edge_chunks` replays a spool directory chunk by chunk;
* :func:`chunks_from_edgelist` slices an in-memory :class:`EdgeList` into the
  same chunk stream, which is how the equivalence tests feed the identical
  edge set through both the in-memory and the streaming build.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Iterator

import numpy as np

from repro.graph.edgelist import EdgeList

__all__ = [
    "CHUNK_META_NAME",
    "EdgeChunkWriter",
    "write_edge_chunks",
    "iter_edge_chunks",
    "read_chunk_meta",
    "chunks_from_edgelist",
]

CHUNK_META_NAME = "chunks.json"
DEFAULT_CHUNK_EDGES = 1 << 20


def _chunk_path(directory: Path, index: int) -> Path:
    return directory / f"chunk_{index:05d}.bin"


class EdgeChunkWriter:
    """Spool a stream of edges into fixed-size binary chunk files.

    ``write`` accepts arrays of any length; edges are buffered and flushed as
    full chunks of exactly ``chunk_edges`` edges (the final chunk may be
    shorter), so peak writer memory is bounded by roughly two chunks.
    """

    def __init__(
        self,
        directory: str | Path,
        num_vertices: int,
        chunk_edges: int = DEFAULT_CHUNK_EDGES,
    ) -> None:
        if chunk_edges < 1:
            raise ValueError("chunk_edges must be >= 1")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.num_vertices = int(num_vertices)
        self.chunk_edges = int(chunk_edges)
        self.num_chunks = 0
        self.num_edges = 0
        self._pending: list[np.ndarray] = []
        self._pending_edges = 0
        self._finished = False

    def write(self, src: np.ndarray, dst: np.ndarray) -> None:
        """Append a batch of edges to the spool."""
        if self._finished:
            raise RuntimeError("writer already finished")
        src = np.asarray(src, dtype=np.int64).ravel()
        dst = np.asarray(dst, dtype=np.int64).ravel()
        if src.size != dst.size:
            raise ValueError("src and dst must have the same length")
        if src.size == 0:
            return
        pair = np.empty((src.size, 2), dtype=np.int64)
        pair[:, 0] = src
        pair[:, 1] = dst
        self._pending.append(pair)
        self._pending_edges += src.size
        while self._pending_edges >= self.chunk_edges:
            self._flush_one()

    def _take_pending(self, count: int) -> np.ndarray:
        taken: list[np.ndarray] = []
        need = count
        while need > 0:
            head = self._pending[0]
            if head.shape[0] <= need:
                taken.append(head)
                need -= head.shape[0]
                self._pending.pop(0)
            else:
                taken.append(head[:need])
                self._pending[0] = head[need:]
                need = 0
        self._pending_edges -= count
        return taken[0] if len(taken) == 1 else np.concatenate(taken)

    def _flush_one(self) -> None:
        count = min(self.chunk_edges, self._pending_edges)
        block = np.ascontiguousarray(self._take_pending(count))
        with open(_chunk_path(self.directory, self.num_chunks), "wb") as fh:
            fh.write(block.tobytes())
        self.num_chunks += 1
        self.num_edges += count

    def finish(self, metadata: dict | None = None) -> dict:
        """Flush the tail chunk and write the spool header; returns it."""
        if self._finished:
            raise RuntimeError("writer already finished")
        while self._pending_edges > 0:
            self._flush_one()
        self._finished = True
        meta = {
            "num_vertices": self.num_vertices,
            "num_edges": self.num_edges,
            "num_chunks": self.num_chunks,
            "chunk_edges": self.chunk_edges,
        }
        if metadata:
            meta.update(metadata)
        with (self.directory / CHUNK_META_NAME).open("w", encoding="utf-8") as fh:
            json.dump(meta, fh, indent=2)
            fh.write("\n")
        return meta


def write_edge_chunks(
    chunks: Iterable[tuple[np.ndarray, np.ndarray]],
    directory: str | Path,
    num_vertices: int,
    chunk_edges: int = DEFAULT_CHUNK_EDGES,
    metadata: dict | None = None,
) -> dict:
    """Spool an iterable of ``(src, dst)`` chunks to disk; returns the header."""
    writer = EdgeChunkWriter(directory, num_vertices, chunk_edges=chunk_edges)
    for src, dst in chunks:
        writer.write(src, dst)
    return writer.finish(metadata)


def read_chunk_meta(directory: str | Path) -> dict:
    """Load a spool directory's header."""
    path = Path(directory) / CHUNK_META_NAME
    with path.open("r", encoding="utf-8") as fh:
        return json.load(fh)


def iter_edge_chunks(directory: str | Path) -> Iterator[tuple[np.ndarray, np.ndarray]]:
    """Replay a spool directory as ``(src, dst)`` chunk pairs, in order."""
    directory = Path(directory)
    meta = read_chunk_meta(directory)
    for index in range(meta["num_chunks"]):
        flat = np.fromfile(_chunk_path(directory, index), dtype=np.int64)
        pairs = flat.reshape(-1, 2)
        yield pairs[:, 0], pairs[:, 1]


def chunks_from_edgelist(
    edges: EdgeList, chunk_edges: int = DEFAULT_CHUNK_EDGES
) -> Iterator[tuple[np.ndarray, np.ndarray]]:
    """Slice an in-memory edge list into the streaming chunk format.

    The concatenation of the yielded chunks is exactly ``edges`` — the bridge
    the tests use to prove the streaming build is bit-identical to the
    in-memory one on the same input.
    """
    if chunk_edges < 1:
        raise ValueError("chunk_edges must be >= 1")
    for start in range(0, edges.num_edges, chunk_edges):
        stop = min(start + chunk_edges, edges.num_edges)
        yield edges.src[start:stop], edges.dst[start:stop]
