"""Shared experiment workload specifications.

The benchmark modules and example scripts all describe their inputs through
:class:`repro.workloads.specs.WorkloadSpec`, so that a figure's workload is
defined exactly once and the mapping from the paper's (cluster-size, graph
scale) to this reproduction's laptop-scale equivalents lives in one place.
"""

from repro.workloads.specs import (
    EXPERIMENTS,
    ExperimentSpec,
    WorkloadSpec,
    build_workload,
    scaled_down_scale,
)

__all__ = [
    "WorkloadSpec",
    "ExperimentSpec",
    "EXPERIMENTS",
    "build_workload",
    "scaled_down_scale",
]
