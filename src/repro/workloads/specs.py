"""Workload and experiment specifications shared by benchmarks and examples.

The paper's evaluation uses graphs between scale 26 and scale 33 on up to 160
GPUs.  This reproduction runs the identical pipeline at laptop scale; the
mapping is recorded here so every benchmark states explicitly which paper
experiment it regenerates and at which reduced scale.

The rule of thumb is a fixed offset: paper scale ``N`` maps to repro scale
``N - SCALE_OFFSET`` (default offset 12, so the paper's per-GPU scale 26
becomes a per-GPU scale 14 here), with cluster shapes preserved where the GPU
count still makes sense on one machine.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.graph.edgelist import EdgeList
from repro.graph.generators import friendster_like, wdc_like
from repro.graph.rmat import generate_rmat
from repro.partition.layout import ClusterLayout

__all__ = [
    "SCALE_OFFSET",
    "WorkloadSpec",
    "ExperimentSpec",
    "EXPERIMENTS",
    "scaled_down_scale",
    "build_workload",
]

#: Offset between the paper's RMAT scales and this reproduction's.
SCALE_OFFSET = 12


def scaled_down_scale(paper_scale: int, offset: int = SCALE_OFFSET) -> int:
    """Map a paper RMAT scale to the laptop-scale equivalent (minimum 10)."""
    return max(10, paper_scale - offset)


@dataclass(frozen=True)
class WorkloadSpec:
    """A concrete graph + cluster configuration for one experiment run."""

    name: str
    kind: str  # "rmat" | "friendster" | "wdc"
    scale: int
    layout_notation: str
    threshold: int | None = None
    seed: int = 11
    num_sources: int = 6

    def layout(self) -> ClusterLayout:
        """The cluster layout object for this workload."""
        return ClusterLayout.from_notation(self.layout_notation)


@dataclass(frozen=True)
class ExperimentSpec:
    """One paper table/figure and the workload(s) that regenerate it."""

    experiment_id: str
    paper_reference: str
    description: str
    bench_module: str
    workloads: tuple = field(default_factory=tuple)


def build_workload(spec: WorkloadSpec) -> EdgeList:
    """Materialise the edge list for a workload spec."""
    if spec.kind == "rmat":
        return generate_rmat(spec.scale, rng=spec.seed)
    if spec.kind == "friendster":
        return friendster_like(num_vertices=1 << spec.scale, rng=spec.seed).prepared()
    if spec.kind == "wdc":
        return wdc_like(num_vertices=1 << spec.scale, rng=spec.seed).prepared()
    raise ValueError(f"unknown workload kind {spec.kind!r}")


#: Registry of every reproduced table and figure (also documented in DESIGN.md).
EXPERIMENTS: dict[str, ExperimentSpec] = {
    "fig1": ExperimentSpec(
        experiment_id="fig1",
        paper_reference="Figure 1",
        description="Landscape of prior work: scale vs processors, GTEPS per processor",
        bench_module="benchmarks/test_fig01_landscape.py",
    ),
    "table1": ExperimentSpec(
        experiment_id="table1",
        paper_reference="Table I",
        description="Memory usage of the partitioned representation",
        bench_module="benchmarks/test_table1_memory.py",
        workloads=(
            WorkloadSpec("table1-rmat16-p16", "rmat", 16, "4x2x2", threshold=32),
        ),
    ),
    "network": ExperimentSpec(
        experiment_id="network",
        paper_reference="Section VI-A1",
        description="Network message-size sweep (optimum around 4 MB)",
        bench_module="benchmarks/test_fig_network_message_size.py",
    ),
    "fig5": ExperimentSpec(
        experiment_id="fig5",
        paper_reference="Figure 5",
        description="Edge/delegate distribution vs degree threshold (RMAT)",
        bench_module="benchmarks/test_fig05_edge_distribution.py",
        workloads=(WorkloadSpec("fig5-rmat17", "rmat", 17, "1x1x1"),),
    ),
    "fig6": ExperimentSpec(
        experiment_id="fig6",
        paper_reference="Figure 6",
        description="Traversal rate vs degree threshold, BFS and DOBFS",
        bench_module="benchmarks/test_fig06_threshold_sweep.py",
        workloads=(WorkloadSpec("fig6-rmat15-16gpu", "rmat", 15, "4x1x4"),),
    ),
    "fig7": ExperimentSpec(
        experiment_id="fig7",
        paper_reference="Figure 7",
        description="Suggested degree thresholds per RMAT scale",
        bench_module="benchmarks/test_fig07_suggested_threshold.py",
    ),
    "fig8": ExperimentSpec(
        experiment_id="fig8",
        paper_reference="Figure 8",
        description="Option ablation (DO / local-all2all / uniquify / IR vs BR)",
        bench_module="benchmarks/test_fig08_option_ablation.py",
        workloads=(
            WorkloadSpec("fig8-rmat16-2x2", "rmat", 16, "4x2x2", threshold=64),
            WorkloadSpec("fig8-rmat16-1x4", "rmat", 16, "4x1x4", threshold=64),
        ),
    ),
    "fig9": ExperimentSpec(
        experiment_id="fig9",
        paper_reference="Figure 9",
        description="Weak scaling with a fixed per-GPU RMAT scale",
        bench_module="benchmarks/test_fig09_weak_scaling.py",
    ),
    "fig10": ExperimentSpec(
        experiment_id="fig10",
        paper_reference="Figure 10",
        description="Runtime breakdown along the weak-scaling curve",
        bench_module="benchmarks/test_fig10_runtime_breakdown.py",
    ),
    "fig11": ExperimentSpec(
        experiment_id="fig11",
        paper_reference="Figure 11",
        description="Strong scaling on a fixed-scale RMAT graph",
        bench_module="benchmarks/test_fig11_strong_scaling.py",
        workloads=(WorkloadSpec("fig11-rmat18", "rmat", 18, "8x1x4"),),
    ),
    "table2": ExperimentSpec(
        experiment_id="table2",
        paper_reference="Table II",
        description="Comparison with previous work",
        bench_module="benchmarks/test_table2_comparison.py",
    ),
    "fig12": ExperimentSpec(
        experiment_id="fig12",
        paper_reference="Figure 12",
        description="Friendster edge/delegate distribution vs threshold",
        bench_module="benchmarks/test_fig12_friendster_distribution.py",
        workloads=(WorkloadSpec("fig12-friendster", "friendster", 17, "1x1x1"),),
    ),
    "fig13": ExperimentSpec(
        experiment_id="fig13",
        paper_reference="Figure 13",
        description="Friendster traversal rate vs threshold",
        bench_module="benchmarks/test_fig13_friendster_rates.py",
        workloads=(WorkloadSpec("fig13-friendster", "friendster", 15, "1x2x2"),),
    ),
    "wdc": ExperimentSpec(
        experiment_id="wdc",
        paper_reference="Section VI-D (WDC 2012)",
        description="Long-tail web graph: BFS vs DOBFS with per-iteration overhead",
        bench_module="benchmarks/test_fig_wdc_longtail.py",
        workloads=(WorkloadSpec("wdc-like", "wdc", 15, "2x2x2", num_sources=4),),
    ),
    "factors": ExperimentSpec(
        experiment_id="factors",
        paper_reference="Section IV-B / VI-B",
        description="Direction-switching factor sweep",
        bench_module="benchmarks/test_fig_direction_factors.py",
        workloads=(WorkloadSpec("factors-rmat14", "rmat", 14, "2x1x2"),),
    ),
    "commmodel": ExperimentSpec(
        experiment_id="commmodel",
        paper_reference="Section II-B vs V",
        description="Analytic communication growth: 1D / 2D vs degree separation",
        bench_module="benchmarks/test_fig_comm_model_scaling.py",
    ),
}
