"""The batched query service: admission queue + MS-BFS batches + result cache.

:class:`QueryService` turns the one-traversal-at-a-time engine into a
query-serving system:

1. **Admission queue** — incoming single-source queries are buffered and, at
   each :meth:`QueryService.flush`, coalesced: duplicates of the same pending
   query merge into one, cached answers are served from memory, and only the
   remaining unique misses reach the engine.
2. **Batched execution** — the misses are chunked into batches of up to
   ``batch_size`` lanes and run through the engine's MS-BFS path
   (:meth:`repro.core.engine.TraversalEngine.run_batch`), one fused frontier
   sweep per batch; per-lane answers are bit-identical to sequential runs,
   so callers cannot observe the batching (``batched=False`` falls back to
   per-source sequential runs — the before/after baseline of the serving
   benchmarks).
3. **Result cache** — answers land in an LRU keyed by
   ``(graph identity, graph version, options, program, source, params)``
   — where *params* is every program parameter (``max_hops``, ``delta``,
   ``damping``, ``iterations``) — with hit/miss/eviction counters; on
   skewed traffic the cache and the batching compound.  The graph identity token keeps two graphs with
   identical options and sources from ever colliding, and the version tag
   makes every entry stale the moment the graph mutates.
4. **Live mutation** — when the engine serves a
   :class:`repro.dynamic.DynamicGraph`, :meth:`QueryService.apply_delta`
   applies an update batch and *invalidates by epoch bump*: the graph
   version in the key advances, every resident entry is purged (counted in
   ``entries_invalidated`` / ``epoch_bumps``), and subsequent misses
   traverse the mutated graph.  :meth:`QueryService.run_mixed` replays a
   mixed read/update stream closed-loop.

The service is synchronous and deterministic: the measured wall-clock is the
saturated closed-loop throughput, and every counter depends only on the
(graph, options, query stream) triple — never on timing — so serving
scenarios can sit in the perf-regression harness next to the traversal ones.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.programs import (
    BatchedBFSLevels,
    BatchedReachability,
    BFSLevels,
    KHopReachability,
)
from repro.obs.tracer import get_tracer
from repro.serve.cache import LRUCache, graph_token
from repro.serve.workload import Query
from repro.utils.timing import now_s

__all__ = ["ServiceStats", "QueryService"]


@dataclass
class ServiceStats:
    """Cumulative service-level counters (cache counters live on the cache)."""

    #: Queries answered (one per submitted query that completed a flush).
    queries: int = 0
    #: Flush rounds executed.
    flushes: int = 0
    #: Pending duplicates merged into an already-pending identical query.
    coalesced: int = 0
    #: Batched engine sweeps executed.
    batches: int = 0
    #: Sources answered by batched sweeps.
    batched_sources: int = 0
    #: Sources answered by sequential single-source runs.
    sequential_sources: int = 0
    #: Update batches applied through :meth:`QueryService.apply_delta`.
    updates: int = 0
    #: Cache epochs retired by graph mutations (one per applied delta).
    epoch_bumps: int = 0
    #: Cached entries invalidated by epoch bumps.
    entries_invalidated: int = 0
    #: Wall-clock seconds spent inside flushes (traversals + cache work).
    wall_s: float = 0.0
    #: Longest single flush observed (seconds) — the closed-loop tail proxy.
    flush_wall_max_s: float = 0.0
    #: Wall-clock seconds spent applying update deltas (mutation + repair).
    update_wall_s: float = 0.0

    @property
    def traversals(self) -> int:
        """Engine runs performed (one per batch, one per sequential source)."""
        return self.batches + self.sequential_sources

    @property
    def queries_per_sec(self) -> float:
        """Closed-loop throughput so far (0.0 before any timed work)."""
        return self.queries / self.wall_s if self.wall_s > 0 else 0.0

    def as_dict(self) -> dict:
        return {
            "queries": self.queries,
            "flushes": self.flushes,
            "coalesced": self.coalesced,
            "batches": self.batches,
            "batched_sources": self.batched_sources,
            "sequential_sources": self.sequential_sources,
            "traversals": self.traversals,
            "updates": self.updates,
            "epoch_bumps": self.epoch_bumps,
            "entries_invalidated": self.entries_invalidated,
            "wall_s": self.wall_s,
            "flush_wall_max_s": self.flush_wall_max_s,
            "update_wall_s": self.update_wall_s,
            "queries_per_sec": self.queries_per_sec,
        }


class QueryService:
    """Serves single-source traversal queries over one built graph.

    Parameters
    ----------
    engine:
        A :class:`repro.core.engine.TraversalEngine` (or anything exposing
        ``run`` / ``run_batch`` and ``options``) bound to the graph being
        served.
    batch_size:
        Maximum lanes per fused sweep; 1 disables batching outright.
    cache_size:
        LRU capacity in results.
    batched:
        ``False`` answers every miss with a sequential single-source run —
        the baseline mode of the serving benchmarks.
    backend:
        Optional execution backend (a registry name such as ``"process"``
        or a live :class:`repro.exec.ExecutionBackend`) the service switches
        the engine to before serving, so batched sweeps run e.g. on the
        multiprocessing pool.  ``None`` keeps the engine's current backend.
        Note this reconfigures the *shared* engine, not a copy — callers
        holding the same engine see the switch.
    """

    def __init__(
        self,
        engine,
        batch_size: int = 32,
        cache_size: int = 1024,
        batched: bool = True,
        backend=None,
    ) -> None:
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self.engine = engine
        if backend is not None:
            engine.use_backend(backend)
        self.batch_size = int(batch_size)
        self.batched = bool(batched) and self.batch_size > 1
        self.cache = LRUCache(cache_size)
        self.stats = ServiceStats()
        self._pending: list[Query] = []
        self._options_label = engine.options.label()

    # ------------------------------------------------------------------ #
    # Admission
    # ------------------------------------------------------------------ #
    def graph_identity(self) -> tuple:
        """The ``(graph token, graph version)`` pair stamped into every key.

        The token is process-unique per live graph object (two graphs with
        identical options/program/source can never collide); the version is
        the mutation counter of a dynamic graph (0 for frozen graphs), so a
        mutation makes every older entry unmatchable.
        """
        root = getattr(self.engine, "graph_root", None)
        if root is None:
            root = self.engine.graph
        return (graph_token(root), int(getattr(self.engine, "graph_version", 0)))

    def key_of(self, query: Query) -> tuple:
        """The cache key: graph identity/version + options + program + source
        + every program parameter (``max_hops``, ``delta``, ``damping``,
        ``iterations``).

        Parameters are part of the key because they are part of the answer:
        an ``sssp`` result computed with one bucket width must never be
        served to a query asking for another (the distances agree but the
        phase/workload counters do not), and a 5-iteration pagerank is a
        different fixpoint than a 50-iteration one.  ``pagerank`` ignores
        its source, which is normalised to 0 here so every equivalent
        ranking query coalesces onto one cache entry.
        """
        source = 0 if query.program == "pagerank" else int(query.source)
        return (
            self.graph_identity(),
            self._options_label,
            query.program,
            source,
            *query.params,
        )

    @property
    def pending(self) -> int:
        """Queries admitted but not yet flushed."""
        return len(self._pending)

    def submit(self, query: Query) -> int:
        """Queue one query; returns its position in the next flush's results."""
        ticket = len(self._pending)
        self._pending.append(query)
        return ticket

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def flush(self) -> list:
        """Answer every pending query; results in submission order.

        Cache hits are served from memory; the remaining unique misses are
        coalesced and traversed — in fused batches of up to ``batch_size``
        when batching is on — and their results cached.
        """
        pending, self._pending = self._pending, []
        tracer = get_tracer()
        started = now_s()
        # Keys are computed at flush time, not admission time: a delta applied
        # between submit and flush bumps the graph version, and the flush must
        # answer against the mutated graph, not a retired epoch.
        pending = [(query, self.key_of(query)) for query in pending]
        answers: dict[tuple, object] = {}
        miss_queries: list[Query] = []
        hits = 0
        for query, key in pending:
            if key in answers:
                self.stats.coalesced += 1
                if tracer.enabled:
                    tracer.event("coalesce", cat="serve", source=int(query.source))
                continue
            cached = self.cache.get(key)
            if cached is not None:
                answers[key] = cached
                hits += 1
                if tracer.enabled:
                    tracer.event("cache-hit", cat="serve", source=int(query.source))
            else:
                answers[key] = None  # placeholder: traversal pending
                miss_queries.append(query)
                if tracer.enabled:
                    tracer.event("cache-miss", cat="serve", source=int(query.source))

        for family, queries in self._group_misses(miss_queries).items():
            for start in range(0, len(queries), self.batch_size):
                chunk = queries[start:start + self.batch_size]
                self._run_chunk(family, chunk, answers)

        results = [answers[key] for _, key in pending]
        self.stats.queries += len(pending)
        self.stats.flushes += 1
        elapsed = now_s() - started
        self.stats.wall_s += elapsed
        if elapsed > self.stats.flush_wall_max_s:
            self.stats.flush_wall_max_s = elapsed
        if tracer.enabled:
            tracer.record_span(
                "flush", cat="serve", start=started, dur=elapsed,
                args={
                    "queries": len(pending),
                    "hits": hits,
                    "misses": len(miss_queries),
                },
            )
        return results

    def serve(self, queries, wave_size: int | None = None) -> list:
        """Closed-loop replay: admit ``queries`` in waves and flush each wave.

        ``wave_size`` (default: ``batch_size``) models clients whose next
        request waits for the previous wave — the standard closed-loop
        harness.  Returns all results in stream order.
        """
        if wave_size is None:
            wave_size = self.batch_size
        if wave_size < 1:
            raise ValueError(f"wave_size must be >= 1, got {wave_size}")
        queries = list(queries)
        results: list = []
        for start in range(0, len(queries), wave_size):
            for query in queries[start:start + wave_size]:
                self.submit(query)
            results.extend(self.flush())
        return results

    def query(self, query: Query):
        """Answer one query immediately (submit + flush).

        Anything else already pending is flushed along with it; the returned
        result is this query's own (by its admission ticket).
        """
        ticket = self.submit(query)
        return self.flush()[ticket]

    # ------------------------------------------------------------------ #
    # Live mutation
    # ------------------------------------------------------------------ #
    def apply_delta(self, delta, flush_pending: bool = True):
        """Apply one update batch to the served graph; invalidate by epoch.

        Requires the engine to serve a mutable graph (a
        :class:`repro.dynamic.DynamicEngine`).  Pending queries are flushed
        first by default — they were admitted against the pre-mutation graph
        and closed-loop replay answers in arrival order.  The graph version
        advances, so every resident cache entry becomes unmatchable; the
        entries are purged eagerly and counted (``entries_invalidated``,
        ``epoch_bumps``).

        Returns the :class:`repro.dynamic.AppliedDelta` of effective changes.
        """
        apply = getattr(self.engine, "apply_delta", None)
        if apply is None:
            raise TypeError(
                "this service serves a frozen graph; build it over a "
                "repro.dynamic.DynamicEngine to apply deltas"
            )
        if flush_pending and self._pending:
            self.flush()
        tracer = get_tracer()
        started = now_s()
        applied = apply(delta)
        self.stats.updates += 1
        self.stats.epoch_bumps += 1
        invalidated = self.cache.clear()
        self.stats.entries_invalidated += invalidated
        elapsed = now_s() - started
        self.stats.update_wall_s += elapsed
        if tracer.enabled:
            tracer.record_span(
                "epoch-bump", cat="serve", start=started, dur=elapsed,
                args={"invalidated": invalidated},
            )
        return applied

    def invalidate_epoch(self) -> int:
        """Retire the cache epoch without applying a delta locally.

        The cluster tier's update fanout path: one replica applies the delta
        to the *shared* dynamic graph (advancing the version every replica's
        keys embed), and every other replica calls this to purge its now
        unmatchable entries eagerly and keep its invalidation counters
        truthful.  Returns the number of entries purged.
        """
        self.stats.epoch_bumps += 1
        dropped = self.cache.clear()
        self.stats.entries_invalidated += dropped
        return dropped

    def run_mixed(self, operations, wave_size: int | None = None) -> list:
        """Closed-loop replay of a mixed read/update stream.

        ``operations`` interleaves :class:`repro.serve.workload.Query`
        requests with :class:`repro.dynamic.EdgeDelta` update batches (what
        :meth:`repro.serve.workload.MixedWorkload.generate` produces).
        Queries accumulate in waves of ``wave_size`` (default:
        ``batch_size``) and flush wave-by-wave; a delta flushes whatever is
        pending, then mutates the graph and bumps the cache epoch.  Returns
        the query results in stream order (deltas contribute no entry).
        """
        from repro.dynamic.delta import EdgeDelta

        if wave_size is None:
            wave_size = self.batch_size
        if wave_size < 1:
            raise ValueError(f"wave_size must be >= 1, got {wave_size}")
        results: list = []
        for op in operations:
            if isinstance(op, EdgeDelta):
                if self.pending:
                    results.extend(self.flush())
                self.apply_delta(op, flush_pending=False)
                continue
            self.submit(op)
            if self.pending >= wave_size:
                results.extend(self.flush())
        if self.pending:
            results.extend(self.flush())
        return results

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    @staticmethod
    def _group_misses(misses: list[Query]) -> dict[tuple, list[Query]]:
        """Group uncached queries into batchable families.

        A family shares everything but the source, so a fused sweep (or a
        shared pagerank run) answers every member with one program config.
        """
        families: dict[tuple, list[Query]] = {}
        for query in misses:
            families.setdefault((query.program, *query.params), []).append(query)
        return families

    def _run_chunk(self, family: tuple, chunk: list[Query], answers: dict) -> None:
        """Traverse one chunk of a family and record/cache its results.

        ``levels``/``khop`` misses go through the fused MS-BFS path when
        batching is on.  The weighted programs carry per-vertex *values*
        (distance bit patterns, fixed-point ranks) that the lane-bitset
        batching cannot fuse, so ``sssp`` misses run sequentially; a
        ``pagerank`` chunk is source-independent and collapses to a single
        engine run shared by every member.
        """
        program = family[0]
        max_hops = family[1]
        sources = [query.source for query in chunk]
        if program == "pagerank":
            produced = [self.engine.run(chunk[0].make_program())] * len(chunk)
            self.stats.sequential_sources += 1
        elif program == "sssp":
            produced = [self.engine.run(query.make_program()) for query in chunk]
            self.stats.sequential_sources += len(chunk)
        elif self.batched and len(chunk) > 1:
            if program == "khop":
                batch = self.engine.run_batch(BatchedReachability(sources, max_hops))
            else:
                batch = self.engine.run_batch(BatchedBFSLevels(sources))
            produced = batch.per_source_results()
            self.stats.batches += 1
            self.stats.batched_sources += len(chunk)
        else:
            produced = []
            for source in sources:
                if program == "khop":
                    produced.append(
                        self.engine.run(KHopReachability(source=source, max_hops=max_hops))
                    )
                else:
                    produced.append(self.engine.run(BFSLevels(source=source)))
            self.stats.sequential_sources += len(chunk)
        for query, result in zip(chunk, produced):
            key = self.key_of(query)
            answers[key] = result
            self.cache.put(key, result)

    def stats_snapshot(self) -> dict:
        """Service and cache counters in one JSON-stable dictionary.

        Includes the invalidation counters (``entries_invalidated``,
        ``epoch_bumps`` under ``service``) and the served graph's current
        mutation version (0 for frozen graphs).
        """
        snapshot = {"service": self.stats.as_dict(), "cache": self.cache.stats.as_dict()}
        snapshot["cache_hit_rate"] = self.cache.stats.hit_rate
        snapshot["flush_wall"] = {
            "count": self.stats.flushes,
            "mean_s": (
                self.stats.wall_s / self.stats.flushes if self.stats.flushes else 0.0
            ),
            "max_s": self.stats.flush_wall_max_s,
        }
        backend = getattr(self.engine, "backend_name", None)
        if backend is not None:
            snapshot["backend"] = backend
        snapshot["graph_version"] = int(getattr(self.engine, "graph_version", 0))
        return snapshot
