"""The sharded serving tier: replicas, open-loop load, hedging, tail latency.

``repro.serve.cluster`` scales the single :class:`repro.serve.QueryService`
out to N replicas over one shared graph, behind an asyncio front door that
replays *open-loop* workloads (requests arrive on a spec-pinned schedule, not
when the previous answer returns) on a deterministic virtual clock:

- :mod:`~repro.serve.cluster.virtualtime` — the virtual-clock event loop
  that makes an asyncio simulation bit-reproducible;
- :mod:`~repro.serve.cluster.openloop` — Poisson / bursty / diurnal arrival
  processes time-warped from one seeded unit-rate stream, over the existing
  Zipf query machinery;
- :mod:`~repro.serve.cluster.replica` — the replica pool (one engine + cache
  per replica, one shared graph, shared execution backend where safe);
- :mod:`~repro.serve.cluster.histogram` — exact latency quantiles and SLO
  accounting;
- :mod:`~repro.serve.cluster.dispatcher` — admission control (bounded queue
  with counted sheds), routing, request hedging with first-response-wins,
  and update fanout via epoch-bump invalidation.
"""

from repro.serve.cluster.dispatcher import ClusterConfig, ClusterDispatcher, ClusterStats
from repro.serve.cluster.histogram import LatencyHistogram
from repro.serve.cluster.openloop import (
    BurstyArrivals,
    DiurnalArrivals,
    OpenLoopWorkload,
    PoissonArrivals,
    TimedQuery,
    TimedUpdate,
    make_arrivals,
)
from repro.serve.cluster.replica import Replica, ReplicaPool
from repro.serve.cluster.virtualtime import VirtualClockEventLoop, run_on_virtual_clock

__all__ = [
    "ClusterConfig",
    "ClusterDispatcher",
    "ClusterStats",
    "LatencyHistogram",
    "PoissonArrivals",
    "BurstyArrivals",
    "DiurnalArrivals",
    "make_arrivals",
    "OpenLoopWorkload",
    "TimedQuery",
    "TimedUpdate",
    "Replica",
    "ReplicaPool",
    "VirtualClockEventLoop",
    "run_on_virtual_clock",
]
