"""Replicas: N query services over one shared graph, one engine each.

A serving cluster replicates the *compute* (engine + result cache per
replica) while sharing the *data* (one partitioned or dynamic graph).  That
split is what makes hedging meaningful — a straggling request can be
re-issued to a different replica and get the identical answer — and what
makes update fanout a real problem: a mutation must advance one shared graph
version and invalidate every replica's cache.

Backend rules
-------------
For a frozen :class:`~repro.partition.subgraphs.PartitionedGraph` the pool
resolves **one** execution backend instance and hands it to every engine:
backends are read-only executors over the CSR, and sharing avoids N
process-pool spawns (the expensive part of the ``process`` backend).  The
pool owns that instance (engines treat passed-in instances as caller-owned)
and closes it in :meth:`ReplicaPool.close`.

For a :class:`~repro.dynamic.DynamicGraph` the pool passes the backend
*name* to each :class:`~repro.dynamic.DynamicEngine` instead: a live backend
instance is pinned to the CSR it was built over, and a compaction would
silently leave it traversing the old graph — the dynamic engine rejects
instances for exactly this reason, and re-resolves per replica after every
compaction.

Timing model
------------
Replicas report a **modeled** service time per request: the traversal's
deterministic modeled milliseconds for a miss, a fixed small constant for a
cache hit.  The cluster simulation charges these against its virtual clock,
so latencies (and everything derived from them: hedge delays, shed counts,
SLO violations) are bit-identical across hosts and execution backends.
"""

from __future__ import annotations

from repro.core.engine import TraversalEngine
from repro.serve.service import QueryService
from repro.serve.workload import Query

__all__ = ["Replica", "ReplicaPool"]

#: Modeled service time of a cache hit, in milliseconds.  Small but nonzero:
#: a hit still costs a key build and a dictionary probe, and a zero would
#: let infinitely many hits complete per virtual instant.
DEFAULT_CACHE_HIT_MS = 0.05


class Replica:
    """One serving replica: a :class:`QueryService` plus modeled timing."""

    def __init__(self, rid: int, service: QueryService, cache_hit_ms: float) -> None:
        self.rid = int(rid)
        self.service = service
        self.cache_hit_ms = float(cache_hit_ms)

    def serve_primary(self, query: Query):
        """Answer ``query`` through the service (cache + stats), as a primary.

        Returns ``(result, service_ms, cache_hit)`` where ``service_ms`` is
        the modeled time the request occupied this replica.
        """
        hits_before = self.service.cache.stats.hits
        result = self.service.query(query)
        hit = self.service.cache.stats.hits > hits_before
        service_ms = self.cache_hit_ms if hit else float(result.timing.elapsed_ms)
        return result, service_ms, hit

    def probe_hedge(self, query: Query):
        """Answer ``query`` on the bare engine, bypassing the cache entirely.

        Hedges must leave no trace in replica state: a hedge that warmed the
        cache (or bumped service counters) would make every later primary's
        hit pattern depend on hedging decisions, breaking the invariant that
        the primary timeline — and with it every gated counter — is
        identical with hedging on or off.  Returns ``(result, service_ms)``.
        """
        result = self.service.engine.run(query.make_program())
        return result, float(result.timing.elapsed_ms)


class ReplicaPool:
    """Builds and owns N replicas over one shared graph.

    Parameters
    ----------
    graph:
        A frozen :class:`PartitionedGraph` or a live
        :class:`repro.dynamic.DynamicGraph` — shared by every replica.
    num_replicas:
        Cluster size (>= 1).
    options, hardware:
        Engine configuration, identical across replicas (answers must be
        replica-independent for first-response-wins to be sound).
    backend:
        Execution backend spec.  A name (``"inline"``/``"process"``/
        ``"thread"``) or ``None`` works for both graph kinds; a live
        instance is accepted only for frozen graphs (and is then shared,
        caller-owned).
    kernels:
        Kernel provider spec (``"numpy"``/``"numba"``/``"auto"`` or a
        :class:`~repro.exec.providers.KernelProvider`), identical across
        replicas.  Providers are stateless, so sharing a spec is always
        safe — it never affects answers, only kernel wall time.
    batch_size, cache_size, batched:
        Per-replica :class:`QueryService` knobs.
    cache_hit_ms:
        Modeled service time of a cache hit.
    """

    def __init__(
        self,
        graph,
        num_replicas: int,
        *,
        options=None,
        hardware=None,
        backend=None,
        kernels=None,
        batch_size: int = 32,
        cache_size: int = 1024,
        batched: bool = True,
        cache_hit_ms: float = DEFAULT_CACHE_HIT_MS,
    ) -> None:
        from repro.dynamic import DynamicEngine, DynamicGraph

        if num_replicas < 1:
            raise ValueError(f"num_replicas must be >= 1, got {num_replicas}")
        if cache_hit_ms < 0:
            raise ValueError(f"cache_hit_ms must be non-negative, got {cache_hit_ms}")
        self.graph = graph
        self.is_dynamic = isinstance(graph, DynamicGraph)
        self._shared_backend = None
        self._owns_backend = False
        engines: list = []
        if self.is_dynamic:
            # Name specs only: DynamicEngine re-resolves after compactions.
            for _ in range(num_replicas):
                engines.append(
                    DynamicEngine(
                        graph,
                        options=options,
                        hardware=hardware,
                        backend=backend,
                        kernels=kernels,
                    )
                )
        else:
            from repro.exec.backend import resolve_backend

            shared, owns = resolve_backend(backend, graph)
            self._shared_backend = shared
            self._owns_backend = owns
            for _ in range(num_replicas):
                engines.append(
                    TraversalEngine(
                        graph,
                        options=options,
                        hardware=hardware,
                        backend=shared,
                        kernels=kernels,
                    )
                )
        self.replicas = [
            Replica(
                rid,
                QueryService(engine, batch_size=batch_size, cache_size=cache_size, batched=batched),
                cache_hit_ms,
            )
            for rid, engine in enumerate(engines)
        ]

    def __len__(self) -> int:
        return len(self.replicas)

    def __iter__(self):
        return iter(self.replicas)

    def __getitem__(self, rid: int) -> Replica:
        return self.replicas[rid]

    @property
    def backend_name(self) -> str:
        """Registry name of the execution backend in effect (replica 0's)."""
        return self.replicas[0].service.engine.backend_name

    @property
    def kernels_name(self) -> str:
        """Resolved kernel-provider name in effect (replica 0's)."""
        return self.replicas[0].service.engine.provider_name

    def apply_delta(self, delta):
        """Apply one update batch to the shared graph; fan out invalidation.

        Replica 0 applies the delta (mutating the shared graph and bumping
        the version every replica's cache keys embed); every other replica
        then retires its cache epoch eagerly via
        :meth:`QueryService.invalidate_epoch`, so all replicas converge on
        the new graph version with truthful invalidation counters.  Returns
        the :class:`repro.dynamic.AppliedDelta`.
        """
        if not self.is_dynamic:
            raise TypeError(
                "this pool serves a frozen graph; build it over a "
                "repro.dynamic.DynamicGraph to apply deltas"
            )
        applied = self.replicas[0].service.apply_delta(delta, flush_pending=False)
        for replica in self.replicas[1:]:
            replica.service.invalidate_epoch()
        return applied

    def graph_version(self) -> int:
        """Current mutation version of the shared graph (0 for frozen)."""
        return int(getattr(self.replicas[0].service.engine, "graph_version", 0))

    def close(self) -> None:
        """Release every engine and the pool-owned shared backend."""
        for replica in self.replicas:
            close = getattr(replica.service.engine, "close", None)
            if close is not None:
                close()
        if self._owns_backend and self._shared_backend is not None:
            self._shared_backend.close()
            self._shared_backend = None
            self._owns_backend = False

    def __enter__(self) -> "ReplicaPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
