"""A deterministic virtual-time asyncio event loop.

The cluster tier replays *open-loop* workloads: requests arrive at
spec-pinned timestamps whether or not the service keeps up, and the measured
quantity is latency under that offered load.  Replaying such a workload on
the wall clock would make every counter — sheds, hedges, SLO violations —
depend on host speed and scheduler jitter, which is exactly what the bench
harness's determinism contract forbids.

:class:`VirtualClockEventLoop` keeps the full asyncio programming model
(tasks, queues, ``asyncio.sleep``, cancellation) but replaces the clock: time
is a float the loop *jumps* forward to the next scheduled callback whenever
no callback is ready.  Nothing ever sleeps for real, so a simulated minute of
traffic replays in milliseconds, and two replays of the same stream execute
the identical sequence of events — callback order is a pure function of the
program, never of the host.

The loop's time unit is **milliseconds of virtual time** by convention (the
unit the serving layer's latency accounting uses); asyncio itself only needs
``time()`` to be monotone and consistent with the delays passed to
``call_later``, so the choice is free.

Blocking work inside a coroutine (a real engine traversal, say) simply does
not advance virtual time — the simulation charges each request its *modeled*
service time instead, which is deterministic and backend-invariant.
"""

from __future__ import annotations

import asyncio
import heapq
import selectors

__all__ = ["VirtualClockEventLoop", "run_on_virtual_clock", "virtual_sleep"]


class VirtualClockEventLoop(asyncio.SelectorEventLoop):
    """A selector event loop whose clock jumps between scheduled callbacks.

    ``time()`` returns the virtual timestamp; whenever the ready queue is
    empty the loop advances the clock to the earliest scheduled timer and
    runs it immediately.  If neither a ready callback nor a timer exists
    while tasks are still pending, the simulation has deadlocked (a task is
    awaiting a future nothing will ever resolve) and the loop raises rather
    than blocking forever in ``select()``.
    """

    def __init__(self) -> None:
        # A plain SelectSelector: the loop never waits on real I/O, so the
        # cheapest portable selector is the right one.
        super().__init__(selectors.SelectSelector())
        self._virtual_now = 0.0

    def time(self) -> float:
        """Current virtual time (milliseconds by the serving convention)."""
        return self._virtual_now

    def advance_to(self, when: float) -> None:
        """Manually advance the clock (never backwards)."""
        if when > self._virtual_now:
            self._virtual_now = float(when)

    def _run_once(self) -> None:
        if not self._ready:
            # Drop timers cancelled while buried in the heap so they cannot
            # masquerade as the next wake-up target.
            while self._scheduled and self._scheduled[0]._cancelled:
                handle = heapq.heappop(self._scheduled)
                handle._scheduled = False
            if self._scheduled:
                self.advance_to(self._scheduled[0]._when)
            elif not self._stopping:
                raise RuntimeError(
                    "virtual clock deadlock: no ready callbacks and no "
                    "scheduled timers, but the loop was asked to keep running"
                )
        # With the clock already advanced the base implementation computes a
        # zero select() timeout and fires the due timers immediately.
        super()._run_once()


def run_on_virtual_clock(coro):
    """Run ``coro`` to completion on a fresh virtual-clock loop.

    The loop is private to this call (the global event-loop policy is never
    touched) and closed afterwards, so simulations cannot leak state into
    each other — a requirement for the bench harness's repeat-determinism
    guard.
    """
    loop = VirtualClockEventLoop()
    try:
        return loop.run_until_complete(coro)
    finally:
        loop.close()


async def virtual_sleep(delay_ms: float) -> None:
    """Sleep ``delay_ms`` of virtual time (non-negative; 0 yields one tick)."""
    await asyncio.sleep(max(0.0, float(delay_ms)))
