"""The cluster front door: admission, routing, hedging, and accounting.

:class:`ClusterDispatcher` replays a timed open-loop stream against a
:class:`~repro.serve.cluster.replica.ReplicaPool` on a virtual-clock asyncio
loop.  Each arrival is admitted (or shed), routed to a primary replica's
bounded queue, optionally *hedged* to a second replica after a
quantile-derived delay, and accounted into an exact latency histogram —
all in virtual time, so the whole simulation is bit-reproducible.

Mode-independence invariants
----------------------------
The bench harness gates a subset of the counters across *configurations*
(hedging on vs off) and across *execution backends*.  That only works if
the primary timeline — which requests are admitted, which replica runs
them, when each starts and finishes — is identical in every mode.  The
dispatcher maintains this by construction:

1. Replica workers process only primary queues; hedges never enter them.
2. A hedge is issued only to a replica that is primary-idle at issue time,
   and is **preempted instantly** when a primary wants that replica — so a
   hedge can never delay any primary.
3. The admission window (``_in_flight``) closes at *primary* completion,
   never when a hedge wins — shedding is primary-driven.
4. Hedges bypass the replica cache entirely (no lookup, no fill) — cache
   state stays primary-driven.
5. Routing reads only primary state (source affinity or primary queue
   depths).

Everything hedging *does* change — latencies, hedge/cancel counters, SLO
violations — lands in the non-gated ``cluster`` section of the record,
which is still deterministic per configuration (asserted across repeats)
but intentionally differs between modes: that difference is the result.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field

import numpy as np

from repro.obs.tracer import get_tracer
from repro.serve.cluster.histogram import LatencyHistogram
from repro.serve.cluster.openloop import TimedQuery, TimedUpdate
from repro.serve.cluster.replica import ReplicaPool
from repro.serve.cluster.virtualtime import run_on_virtual_clock
from repro.utils.rng import hash64

__all__ = ["ClusterConfig", "ClusterStats", "ClusterDispatcher"]

ROUTERS = ("affinity", "least-queue")


@dataclass(frozen=True)
class ClusterConfig:
    """Serving-tier knobs (the pool itself is configured separately).

    Parameters
    ----------
    queue_limit:
        Maximum admitted-but-unfinished requests across the cluster; an
        arrival beyond it is shed (0 = unbounded, no shedding).
    hedge:
        Re-issue stragglers to a second replica (needs >= 2 replicas).
    hedge_quantile:
        A request is hedged once its age exceeds this quantile of the
        latencies completed so far (the tail-at-scale "deferred hedge").
    hedge_min_samples:
        Completed requests required before hedging arms (the quantile is
        meaningless on a handful of samples).
    slo_ms:
        Latency objective for the violation counter (``None`` disables).
    router:
        ``"affinity"`` (source-hashed, cache-friendly, imbalance-prone) or
        ``"least-queue"`` (join the shortest primary queue).
    """

    queue_limit: int = 64
    hedge: bool = True
    hedge_quantile: float = 0.95
    hedge_min_samples: int = 32
    slo_ms: float | None = None
    router: str = "affinity"

    def __post_init__(self) -> None:
        if self.queue_limit < 0:
            raise ValueError(f"queue_limit must be >= 0, got {self.queue_limit}")
        if not 0.0 < self.hedge_quantile < 1.0:
            raise ValueError(
                f"hedge_quantile must be in (0, 1), got {self.hedge_quantile}"
            )
        if self.hedge_min_samples < 1:
            raise ValueError(
                f"hedge_min_samples must be >= 1, got {self.hedge_min_samples}"
            )
        if self.slo_ms is not None and self.slo_ms <= 0:
            raise ValueError(f"slo_ms must be positive, got {self.slo_ms}")
        if self.router not in ROUTERS:
            raise ValueError(
                f"unknown router {self.router!r}; expected one of {ROUTERS}"
            )

    def describe(self) -> dict:
        """JSON-stable description for bench artifacts."""
        return {
            "queue_limit": self.queue_limit,
            "hedge": self.hedge,
            "hedge_quantile": self.hedge_quantile,
            "hedge_min_samples": self.hedge_min_samples,
            "slo_ms": self.slo_ms,
            "router": self.router,
        }


@dataclass
class ClusterStats:
    """Cumulative cluster counters; see the module docstring for gating."""

    #: Requests offered by the workload.
    arrivals: int = 0
    #: Requests admitted past the queue limit.
    admitted: int = 0
    #: Requests shed (queue full or update in progress).
    shed: int = 0
    #: Sheds attributable to a pending graph update's admission freeze.
    shed_during_update: int = 0
    #: High-water mark of admitted-but-unfinished requests.
    inflight_peak: int = 0
    #: Update batches applied (after draining in-flight work).
    updates: int = 0
    #: Hedges actually issued to a second replica.
    hedges_issued: int = 0
    #: Hedge attempts that found no idle replica to run on.
    hedges_skipped: int = 0
    #: Hedges whose response arrived before the primary's.
    hedges_won: int = 0
    #: Hedges cancelled because the primary answered first.
    hedges_cancelled: int = 0
    #: Hedges evicted because a primary needed their replica.
    hedges_preempted: int = 0
    #: Primary responses discarded because a hedge had already answered.
    primaries_discarded: int = 0


class ClusterDispatcher:
    """Replays one timed stream against a replica pool; single use.

    Construct, call :meth:`run` once with the stream, then read
    :meth:`stats_snapshot`.  One dispatcher per replay keeps cache and
    histogram state from leaking between bench repeats.
    """

    def __init__(self, pool: ReplicaPool, config: ClusterConfig | None = None) -> None:
        self.pool = pool
        self.config = config or ClusterConfig()
        if self.config.hedge and len(pool) < 2:
            raise ValueError(
                "hedging needs at least 2 replicas (a hedge re-issues the "
                "query to a *different* replica); disable hedging or grow the pool"
            )
        self.stats = ClusterStats()
        self.hist = LatencyHistogram(slo_ms=self.config.slo_ms)
        self._answers_checksum = 0
        self._makespan_ms = 0.0
        self._primaries = [0] * len(pool)
        self._hedge_runs = [0] * len(pool)
        self._ran = False
        # Per-run asyncio state, built inside the virtual loop.
        self._loop: asyncio.AbstractEventLoop | None = None
        self._queues: list[asyncio.Queue] = []
        self._busy: list[TimedQuery | None] = []
        self._hedge_slots: list[tuple[asyncio.Task, dict] | None] = []
        self._in_flight = 0
        self._updating = 0
        self._drained: asyncio.Event | None = None

    # ------------------------------------------------------------------ #
    # Entry point
    # ------------------------------------------------------------------ #
    def run(self, stream, on_answer=None) -> dict:
        """Replay ``stream`` (:class:`TimedQuery`/:class:`TimedUpdate` items,
        non-decreasing ``at_ms``) to completion; returns the snapshot.

        ``on_answer(index, result)`` is invoked for every answered query
        (first response wins) — tests use it to compare answers; the
        dispatcher itself retains only the folded checksum.
        """
        if self._ran:
            raise RuntimeError("a dispatcher replays exactly one stream; build a new one")
        self._ran = True
        run_on_virtual_clock(self._main(list(stream), on_answer))
        return self.stats_snapshot()

    # ------------------------------------------------------------------ #
    # Simulation coroutines
    # ------------------------------------------------------------------ #
    async def _main(self, stream, on_answer) -> None:
        loop = asyncio.get_running_loop()
        self._loop = loop
        n = len(self.pool)
        self._queues = [asyncio.Queue() for _ in range(n)]
        self._busy = [None] * n
        self._hedge_slots = [None] * n
        self._drained = asyncio.Event()
        workers = [loop.create_task(self._worker(rid)) for rid in range(n)]
        tasks: list[asyncio.Task] = []
        try:
            for item in stream:
                delay = item.at_ms - loop.time()
                if delay > 0:
                    await asyncio.sleep(delay)
                if isinstance(item, TimedUpdate):
                    # The freeze starts at arrival time, synchronously, so
                    # the set of requests shed behind it is deterministic.
                    self._updating += 1
                    tasks.append(loop.create_task(self._apply_update(item)))
                else:
                    self._on_arrival(item, tasks, on_answer)
            if tasks:
                await asyncio.gather(*tasks)
            # Every request has its answer; the makespan additionally waits
            # for late primaries still finishing work a hedge already won.
            while self._in_flight > 0:
                self._drained.clear()
                await self._drained.wait()
            self._makespan_ms = loop.time()
        finally:
            for worker in workers:
                worker.cancel()
            await asyncio.gather(*workers, return_exceptions=True)

    def _on_arrival(self, item: TimedQuery, tasks: list, on_answer) -> None:
        self.stats.arrivals += 1
        tracer = get_tracer()
        if self._updating:
            self.stats.shed += 1
            self.stats.shed_during_update += 1
            if tracer.enabled:
                tracer.instant(
                    "shed", cat="cluster", ts=self._loop.time(), unit="ms",
                    args={"reason": "update", "index": item.index},
                )
            return
        if self.config.queue_limit and self._in_flight >= self.config.queue_limit:
            self.stats.shed += 1
            if tracer.enabled:
                tracer.instant(
                    "shed", cat="cluster", ts=self._loop.time(), unit="ms",
                    args={"reason": "queue-limit", "index": item.index},
                )
            return
        self.stats.admitted += 1
        self._in_flight += 1
        if self._in_flight > self.stats.inflight_peak:
            self.stats.inflight_peak = self._in_flight
        rid = self._route(item)
        tasks.append(self._loop.create_task(self._request(item, rid, on_answer)))

    def _route(self, item: TimedQuery) -> int:
        n = len(self.pool)
        if self.config.router == "least-queue":
            def load(rid: int) -> tuple:
                return (
                    self._queues[rid].qsize() + (self._busy[rid] is not None),
                    rid,
                )
            return min(range(n), key=load)
        return int(hash64(np.uint64(item.query.source), seed=7)) % n

    async def _request(self, item: TimedQuery, rid: int, on_answer) -> None:
        fut = self._loop.create_future()
        self._queues[rid].put_nowait((item, fut))
        hedge_task = None
        hstate: dict | None = None
        if self.config.hedge:
            delay = self._hedge_delay()
            if delay is not None:
                hstate = {"issued": False, "finished": False, "preempted": False}
                hedge_task = self._loop.create_task(
                    self._hedge(item, fut, rid, delay, hstate)
                )
        result, responder = await fut
        latency_ms = self._loop.time() - item.at_ms
        self.hist.record(latency_ms)
        tracer = get_tracer()
        if tracer.enabled:
            tracer.record_span(
                "request", cat="cluster", start=item.at_ms, dur=latency_ms,
                tid=rid + 1, unit="ms",
                args={"responder": responder, "rid": rid, "index": item.index},
            )
        self._fold_answer(item.index, result)
        if on_answer is not None:
            on_answer(item.index, result)
        if responder == "hedge":
            self.stats.hedges_won += 1
        if (
            hedge_task is not None
            and not hstate["finished"]
            and not hstate["preempted"]
        ):
            hedge_task.cancel()
            if hstate["issued"]:
                self.stats.hedges_cancelled += 1

    def _hedge_delay(self) -> float | None:
        """Arm a hedge only once enough latencies back the quantile."""
        if self.hist.count < self.config.hedge_min_samples:
            return None
        return self.hist.quantile(self.config.hedge_quantile)

    def _pick_idle(self, primary_rid: int) -> int | None:
        """Lowest-numbered replica with no primary work and no hedge."""
        for rid in range(len(self.pool)):
            if rid == primary_rid:
                continue
            if (
                self._busy[rid] is None
                and self._queues[rid].empty()
                and self._hedge_slots[rid] is None
            ):
                return rid
        return None

    async def _hedge(
        self, item: TimedQuery, fut, primary_rid: int, delay_ms: float, state: dict
    ) -> None:
        await asyncio.sleep(delay_ms)
        if fut.done():
            state["finished"] = True
            return
        tracer = get_tracer()
        rid = self._pick_idle(primary_rid)
        if rid is None:
            self.stats.hedges_skipped += 1
            state["finished"] = True
            if tracer.enabled:
                tracer.instant(
                    "hedge-skip", cat="cluster", ts=self._loop.time(), unit="ms",
                    args={"index": item.index},
                )
            return
        self.stats.hedges_issued += 1
        state["issued"] = True
        if tracer.enabled:
            tracer.instant(
                "hedge-fire", cat="cluster", ts=self._loop.time(),
                tid=rid + 1, unit="ms",
                args={"index": item.index, "rid": rid, "primary_rid": primary_rid},
            )
        self._hedge_slots[rid] = (asyncio.current_task(), state)
        try:
            result, service_ms = self.pool[rid].probe_hedge(item.query)
            self._hedge_runs[rid] += 1
            await asyncio.sleep(service_ms)
        finally:
            self._hedge_slots[rid] = None
        state["finished"] = True
        if not fut.done():
            fut.set_result((result, "hedge"))

    async def _worker(self, rid: int) -> None:
        replica = self.pool[rid]
        queue = self._queues[rid]
        while True:
            item, fut = await queue.get()
            occupant = self._hedge_slots[rid]
            if occupant is not None:
                # A primary always evicts a resident hedge instantly, so the
                # primary timeline cannot depend on hedging decisions.
                task, state = occupant
                state["preempted"] = True
                self.stats.hedges_preempted += 1
                task.cancel()
                self._hedge_slots[rid] = None
                tracer = get_tracer()
                if tracer.enabled:
                    tracer.instant(
                        "hedge-preempt", cat="cluster", ts=self._loop.time(),
                        tid=rid + 1, unit="ms", args={"rid": rid},
                    )
            self._busy[rid] = item
            result, service_ms, _hit = replica.serve_primary(item.query)
            await asyncio.sleep(service_ms)
            self._busy[rid] = None
            self._primaries[rid] += 1
            self._in_flight -= 1
            if self._in_flight == 0:
                self._drained.set()
            if fut.done():
                self.stats.primaries_discarded += 1
            else:
                fut.set_result((result, "primary"))
            queue.task_done()

    async def _apply_update(self, item: TimedUpdate) -> None:
        # Drain barrier: the delta applies once all admitted work has left
        # the system — the cluster-wide analogue of apply_delta's
        # flush-then-mutate contract, and primary-driven in both modes.
        started_ms = self._loop.time()
        while self._in_flight > 0:
            self._drained.clear()
            await self._drained.wait()
        self.pool.apply_delta(item.delta)
        self.stats.updates += 1
        self._updating -= 1
        tracer = get_tracer()
        if tracer.enabled:
            tracer.record_span(
                "update-fanout", cat="cluster", start=started_ms,
                dur=self._loop.time() - started_ms, unit="ms",
                args={"replicas": len(self.pool)},
            )

    # ------------------------------------------------------------------ #
    # Accounting
    # ------------------------------------------------------------------ #
    def _fold_answer(self, index: int, result) -> None:
        from repro.bench.runner import values_checksum

        self._answers_checksum ^= int(
            hash64(np.uint64(values_checksum(result)), seed=index + 1)
        )

    def gated_counters(self) -> dict:
        """The mode-independent, backend-invariant counters the bench gates.

        Identical whether hedging is on or off (the primary timeline is) and
        whichever execution backend runs the traversals (virtual time is
        driven by modeled service times only).
        """
        cache_hits = sum(r.service.cache.stats.hits for r in self.pool)
        cache_misses = sum(r.service.cache.stats.misses for r in self.pool)
        return {
            "arrivals": self.stats.arrivals,
            "admitted": self.stats.admitted,
            "shed": self.stats.shed,
            "inflight_peak": self.stats.inflight_peak,
            "updates": self.stats.updates,
            "cache_hits": cache_hits,
            "cache_misses": cache_misses,
            "final_graph_version": self.pool.graph_version(),
            "answers_checksum": self._answers_checksum,
        }

    def stats_snapshot(self) -> dict:
        """The full cluster record: gated counters + per-mode tail accounting.

        Everything here is deterministic for a fixed (stream, pool, config)
        triple; only the ``counters`` half is additionally invariant across
        hedging modes and execution backends.
        """
        makespan_s = self._makespan_ms / 1000.0
        return {
            "counters": self.gated_counters(),
            "cluster": {
                "mode": "hedged" if self.config.hedge else "no-hedge",
                "config": self.config.describe(),
                "replicas": len(self.pool),
                "hedges_issued": self.stats.hedges_issued,
                "hedges_skipped": self.stats.hedges_skipped,
                "hedges_won": self.stats.hedges_won,
                "hedges_cancelled": self.stats.hedges_cancelled,
                "hedges_preempted": self.stats.hedges_preempted,
                "primaries_discarded": self.stats.primaries_discarded,
                "shed_during_update": self.stats.shed_during_update,
                "primaries_per_replica": list(self._primaries),
                "hedge_runs_per_replica": list(self._hedge_runs),
                "virtual_makespan_ms": self._makespan_ms,
                "achieved_qps": (
                    self.stats.admitted / makespan_s if makespan_s > 0 else 0.0
                ),
                "latency": self.hist.snapshot(),
            },
        }
