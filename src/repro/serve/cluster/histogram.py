"""Latency accounting for the cluster tier: exact quantiles + log buckets.

Tail latency is the cluster tier's headline metric, so the accounting must be
exact and deterministic: quantiles are computed from the full sample set (a
few thousand per bench replay — cheap), not estimated from bucket shapes, and
every recorded value is a *virtual-clock* latency derived from modeled
service times, so two replays of one pinned workload produce bit-identical
p50/p95/p99 on any machine or execution backend.

The log-spaced bucket counts exist for the artifact: they give a compact,
JSON-stable shape of the distribution that survives after the raw samples
are gone, which is what makes committed bench artifacts reviewable.
"""

from __future__ import annotations

import math

__all__ = ["LatencyHistogram"]

#: Log-bucket geometry: bucket ``i`` covers ``[BASE * GROWTH**i, ...)`` ms,
#: with an underflow bucket below ``BASE``.  Two decades per 10 buckets.
_BASE_MS = 0.1
_GROWTH = 10.0 ** 0.2  # 5 buckets per decade


class LatencyHistogram:
    """Collects latency samples; serves exact quantiles and SLO counters.

    Parameters
    ----------
    slo_ms:
        Target latency: every recorded sample above it counts one SLO
        violation.  ``None`` disables the counter (reported as 0).
    """

    def __init__(self, slo_ms: float | None = None) -> None:
        if slo_ms is not None and slo_ms <= 0:
            raise ValueError(f"slo_ms must be positive, got {slo_ms}")
        self.slo_ms = slo_ms
        self._samples: list[float] = []
        self._sorted: list[float] | None = []
        self._total = 0.0
        self._max = 0.0
        self.slo_violations = 0

    # ------------------------------------------------------------------ #
    # Recording
    # ------------------------------------------------------------------ #
    def record(self, latency_ms: float) -> None:
        """Record one latency sample (non-negative milliseconds)."""
        latency_ms = float(latency_ms)
        if latency_ms < 0:
            raise ValueError(f"latency must be non-negative, got {latency_ms}")
        self._samples.append(latency_ms)
        self._sorted = None
        self._total += latency_ms
        if latency_ms > self._max:
            self._max = latency_ms
        if self.slo_ms is not None and latency_ms > self.slo_ms:
            self.slo_violations += 1

    # ------------------------------------------------------------------ #
    # Reading
    # ------------------------------------------------------------------ #
    @property
    def count(self) -> int:
        return len(self._samples)

    @property
    def mean(self) -> float:
        return self._total / len(self._samples) if self._samples else 0.0

    @property
    def max(self) -> float:
        return self._max

    def _ordered(self) -> list[float]:
        if self._sorted is None:
            self._sorted = sorted(self._samples)
        return self._sorted

    def quantile(self, q: float) -> float:
        """Exact empirical quantile (nearest-rank; 0.0 when empty).

        Nearest-rank keeps the result an *observed* sample, so a quantile can
        be compared bit-exactly across replays without interpolation noise.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        ordered = self._ordered()
        if not ordered:
            return 0.0
        rank = min(len(ordered) - 1, max(0, math.ceil(q * len(ordered)) - 1))
        return ordered[rank]

    def buckets(self) -> dict[str, int]:
        """Log-spaced bucket counts keyed by each bucket's upper bound (ms)."""
        counts: dict[str, int] = {}
        for value in self._ordered():
            if value < _BASE_MS:
                exponent = 0
            else:
                exponent = 1 + math.floor(math.log(value / _BASE_MS, _GROWTH))
            upper = _BASE_MS * _GROWTH ** exponent
            key = f"<{upper:.3g}ms"
            counts[key] = counts.get(key, 0) + 1
        return counts

    def snapshot(self) -> dict:
        """JSON-stable summary: count/mean/max, p50/p95/p99, SLO, buckets."""
        return {
            "count": self.count,
            "mean_ms": self.mean,
            "max_ms": self.max,
            "p50_ms": self.quantile(0.50),
            "p95_ms": self.quantile(0.95),
            "p99_ms": self.quantile(0.99),
            "slo_ms": self.slo_ms,
            "slo_violations": self.slo_violations,
            "buckets": self.buckets(),
        }
