"""Query serving (``repro.serve``): batch, cache and schedule traversals.

The paper's system answers one BFS at a time; a service answering heavy
query traffic wants *throughput*.  This package supplies the serving layer
over a built graph:

* :mod:`repro.serve.service` — :class:`QueryService`: an admission queue
  that coalesces pending single-source queries, routes the unique cache
  misses through the engine's batched MS-BFS path in fused sweeps of up to
  B lanes, and memoizes answers in an LRU result cache;
* :mod:`repro.serve.cache` — the LRU cache with hit/miss/eviction counters;
* :mod:`repro.serve.workload` — deterministic Zipf-skewed query streams
  (:class:`ZipfWorkload`) for closed-loop load generation;
* :mod:`repro.serve.cluster` — the sharded serving tier: N replicas behind
  an asyncio front door replaying *open-loop* arrivals (Poisson / bursty /
  diurnal) on a deterministic virtual clock, with admission control,
  request hedging, and p50/p95/p99 tail-latency accounting.

Typical use::

    import repro
    service = repro.session().generate(scale=14).serve(batch_size=32)
    stream = repro.ZipfWorkload(num_queries=512, skew=1.0).generate(
        service.engine.graph.num_vertices
    )
    results = service.serve(stream)
    print(service.stats.queries_per_sec, service.cache.stats.hit_rate)

The headline metric of this subsystem is queries/second, not single-traversal
wall time; ``repro serve bench`` and the ``serve-*`` scenarios in
:mod:`repro.bench.scenarios` track it.
"""

from repro.serve.cache import CacheStats, LRUCache, graph_token
from repro.serve.cluster import (
    ClusterConfig,
    ClusterDispatcher,
    OpenLoopWorkload,
    ReplicaPool,
    make_arrivals,
)
from repro.serve.service import QueryService, ServiceStats
from repro.serve.workload import MixedWorkload, Query, ZipfWorkload, zipf_ranks, zipf_weights

__all__ = [
    "CacheStats",
    "ClusterConfig",
    "ClusterDispatcher",
    "LRUCache",
    "MixedWorkload",
    "OpenLoopWorkload",
    "Query",
    "QueryService",
    "ReplicaPool",
    "ServiceStats",
    "ZipfWorkload",
    "graph_token",
    "make_arrivals",
    "zipf_ranks",
    "zipf_weights",
]
