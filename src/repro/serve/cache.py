"""An LRU result cache with hit/miss/eviction accounting.

The serving layer answers repeated queries from memory: traversal results are
deterministic for a fixed graph/options pair, so a cached answer is exactly
the answer a fresh traversal would produce.  The cache is a plain
``OrderedDict`` LRU — recency updated on hits, least-recently-used entry
evicted at capacity — with the counters the service reports per snapshot
(Zipf-skewed query streams make the hit rate the single biggest throughput
lever, so it must be observable).
"""

from __future__ import annotations

import itertools
import weakref
from collections import OrderedDict
from dataclasses import dataclass
from typing import Hashable

__all__ = ["CacheStats", "LRUCache", "graph_token"]

_MISSING = object()

#: Process-wide registry of graph identity tokens.  ``id()`` can be recycled
#: after garbage collection, so cache keys built on it could alias two
#: different graphs; this registry hands every live graph object a distinct
#: monotone token instead, and a weakref finalizer retires the id-keyed
#: entry when the graph dies (graph classes are not hashable, so a
#: WeakKeyDictionary cannot hold them directly).
_GRAPH_TOKENS: dict[int, int] = {}
_NEXT_TOKEN = itertools.count(1)


def graph_token(graph) -> int:
    """A process-unique, stable identity token for a live graph object.

    Two simultaneously-live graphs never share a token (unlike ``id()``,
    which the allocator recycles), so cache keys that include the token
    cannot collide across graphs even when every run parameter matches.
    """
    key = id(graph)
    token = _GRAPH_TOKENS.get(key)
    if token is None:
        token = next(_NEXT_TOKEN)
        _GRAPH_TOKENS[key] = token
        weakref.finalize(graph, _GRAPH_TOKENS.pop, key, None)
    return token


@dataclass
class CacheStats:
    """Cumulative counters of one cache instance."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    #: Entries currently resident (kept in sync by the cache).
    size: int = 0
    #: Maximum entries the cache will hold.
    capacity: int = 0

    @property
    def lookups(self) -> int:
        """Total lookups (hits + misses)."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Hits per lookup (0.0 when nothing was looked up yet)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> dict:
        """Flat dictionary for reporting."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "size": self.size,
            "capacity": self.capacity,
            "hit_rate": self.hit_rate,
        }


class LRUCache:
    """A bounded mapping evicting the least-recently-used entry.

    Parameters
    ----------
    capacity:
        Maximum number of resident entries; must be >= 1.  (A zero-capacity
        cache would silently turn every lookup into a miss — ask for what you
        mean instead: bypass the cache at the service level.)
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"cache capacity must be >= 1, got {capacity}")
        self._capacity = int(capacity)
        self._entries: OrderedDict[Hashable, object] = OrderedDict()
        self.stats = CacheStats(capacity=self._capacity)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        """Membership test without touching recency or the hit/miss counters."""
        return key in self._entries

    @property
    def capacity(self) -> int:
        return self._capacity

    def get(self, key: Hashable, default=None):
        """Look up ``key``, counting a hit (and refreshing recency) or a miss."""
        value = self._entries.get(key, _MISSING)
        if value is _MISSING:
            self.stats.misses += 1
            return default
        self._entries.move_to_end(key)
        self.stats.hits += 1
        return value

    def put(self, key: Hashable, value) -> None:
        """Insert or refresh ``key``, evicting the LRU entry at capacity."""
        if key in self._entries:
            self._entries.move_to_end(key)
            self._entries[key] = value
            return
        if len(self._entries) >= self._capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1
        self._entries[key] = value
        self.stats.size = len(self._entries)

    def clear(self) -> int:
        """Drop every entry (counters are preserved — they are cumulative).

        Returns the number of entries dropped, which the serving layer
        reports as invalidations when a graph mutation bumps the epoch.
        """
        dropped = len(self._entries)
        self._entries.clear()
        self.stats.size = 0
        return dropped
