"""Deterministic query workloads for the serving benchmark.

Real query traffic against a social/web graph is heavily skewed: a small set
of popular sources (celebrity profiles, hub pages) receives most of the
requests.  :class:`ZipfWorkload` replays that shape deterministically — every
random draw goes through :mod:`repro.utils.rng`, so the same spec produces a
bit-identical query stream on any machine, which is what lets the bench
harness treat queries/second scenarios like any other pinned scenario.

The generator is *closed-loop*: the stream is materialised up front and the
service consumes it as fast as it can, so the measured rate is the system's
saturated throughput (open-loop arrival processes measure latency under an
offered load instead — a different experiment).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.rng import hash64, make_rng

__all__ = [
    "Query",
    "QUERY_PROGRAMS",
    "ZipfWorkload",
    "MixedWorkload",
    "zipf_ranks",
    "zipf_weights",
]


#: Program names a query may request.
QUERY_PROGRAMS = ("levels", "khop", "sssp", "pagerank")


@dataclass(frozen=True)
class Query:
    """One client request: a traversal of a named program.

    ``levels`` / ``khop`` are the unweighted BFS queries; ``sssp`` runs
    delta-stepping shortest paths (the served graph must carry edge
    weights) and ``pagerank`` the fixed-iteration ranking (``source`` is
    ignored — every pagerank query with the same parameters shares one
    answer).  The per-program parameters (``max_hops``, ``delta``,
    ``damping``, ``iterations``) are part of the service's cache key:
    two queries that differ only in a parameter are different requests.
    """

    #: Which program to run: one of :data:`QUERY_PROGRAMS`.
    program: str
    #: The source vertex (ignored for ``pagerank``).
    source: int
    #: Hop cap for ``khop`` queries.
    max_hops: int | None = None
    #: Bucket width for ``sssp`` queries (positive float, ``"auto"`` or inf).
    delta: float | str | None = None
    #: Damping factor for ``pagerank`` queries (defaults to 0.85).
    damping: float | None = None
    #: Sweep count for ``pagerank`` queries (defaults to 20).
    iterations: int | None = None

    def __post_init__(self) -> None:
        if self.program not in QUERY_PROGRAMS:
            raise ValueError(f"unknown query program {self.program!r}")
        if self.program == "khop" and (self.max_hops is None or self.max_hops < 0):
            raise ValueError("khop queries need max_hops >= 0")
        if self.delta is not None and self.program != "sssp":
            raise ValueError(f"delta only applies to sssp queries, not {self.program!r}")
        if self.program != "pagerank":
            if self.damping is not None or self.iterations is not None:
                raise ValueError(
                    f"damping/iterations only apply to pagerank queries, not {self.program!r}"
                )
        elif self.iterations is not None and self.iterations < 1:
            raise ValueError(f"pagerank queries need iterations >= 1, got {self.iterations}")

    @property
    def params(self) -> tuple:
        """The program parameters, as cached and batched: everything that
        changes the answer besides ``(program, source)``."""
        return (self.max_hops, self.delta, self.damping, self.iterations)

    def make_program(self):
        """The engine program answering this query (single-source form)."""
        from repro.core.programs import BFSLevels, KHopReachability

        if self.program == "khop":
            return KHopReachability(source=self.source, max_hops=self.max_hops)
        if self.program == "sssp":
            from repro.weighted import DeltaSteppingSSSP

            delta = "auto" if self.delta is None else self.delta
            return DeltaSteppingSSSP(self.source, delta=delta)
        if self.program == "pagerank":
            from repro.weighted import PageRank

            return PageRank(
                damping=0.85 if self.damping is None else self.damping,
                iterations=20 if self.iterations is None else self.iterations,
            )
        return BFSLevels(source=self.source)


#: Normalised Zipf weight vectors keyed by ``(pool, skew)``.  Building one is
#: O(pool) and the serving paths draw from the same distribution thousands of
#: times per replay, so the vector is computed once and shared read-only.
_zipf_weight_cache: dict[tuple[int, float], np.ndarray] = {}


def zipf_weights(pool: int, skew: float) -> np.ndarray:
    """The normalised weight vector ``P(r) ∝ (r + 1)^-skew`` over ``[0, pool)``.

    Cached per ``(pool, skew)`` and returned read-only (callers share one
    array; mutating it would corrupt every later draw).
    """
    if pool < 1:
        raise ValueError(f"pool must be >= 1, got {pool}")
    if skew < 0:
        raise ValueError(f"skew must be non-negative, got {skew}")
    key = (int(pool), float(skew))
    weights = _zipf_weight_cache.get(key)
    if weights is None:
        weights = np.power(np.arange(1, pool + 1, dtype=np.float64), -float(skew))
        weights /= weights.sum()
        weights.flags.writeable = False
        _zipf_weight_cache[key] = weights
    return weights


def zipf_ranks(count: int, pool: int, skew: float, rng) -> np.ndarray:
    """Draw ``count`` ranks in ``[0, pool)`` with ``P(r) ∝ (r + 1)^-skew``.

    ``skew = 0`` is uniform; larger values concentrate mass on low ranks
    (``skew ≈ 1`` is the classic Zipf web-traffic shape).
    """
    return make_rng(rng).choice(pool, size=int(count), p=zipf_weights(pool, skew))


@dataclass(frozen=True)
class ZipfWorkload:
    """A pinned, replayable Zipf-skewed query stream.

    Parameters
    ----------
    num_queries:
        Stream length.
    skew:
        Zipf exponent of the popularity distribution (0 = uniform).
    pool:
        Size of the candidate source pool the ranks map onto; the effective
        pool is capped at the number of valid (non-isolated) sources.
    seed:
        Drives both the popularity order (which vertex gets which rank) and
        the per-query rank draws.
    program:
        Query program for every request (one of :data:`QUERY_PROGRAMS`;
        weighted programs need the served graph built with weights).
    max_hops:
        Hop cap for ``khop`` streams.
    """

    num_queries: int = 256
    skew: float = 1.0
    pool: int = 64
    seed: int = 11
    program: str = "levels"
    max_hops: int | None = None

    def __post_init__(self) -> None:
        if self.num_queries < 1:
            raise ValueError(f"num_queries must be >= 1, got {self.num_queries}")
        if self.pool < 1:
            raise ValueError(f"pool must be >= 1, got {self.pool}")
        if self.skew < 0:
            raise ValueError(f"skew must be non-negative, got {self.skew}")
        if self.program not in QUERY_PROGRAMS:
            raise ValueError(f"unknown query program {self.program!r}")
        if self.program == "khop" and (self.max_hops is None or self.max_hops < 0):
            raise ValueError("khop workloads need max_hops >= 0")

    def sources(self, num_vertices: int, degrees: np.ndarray | None = None) -> np.ndarray:
        """The stream's source vertices, in request order.

        Candidates are the non-isolated vertices (when ``degrees`` is given),
        assigned popularity ranks by a seeded hash shuffle; rank 0 is the
        hottest source.  Everything is deterministic in ``(spec, graph)``.
        """
        if num_vertices < 1:
            raise ValueError("graph has no vertices to query")
        if degrees is not None:
            candidates = np.flatnonzero(np.asarray(degrees) > 0).astype(np.int64)
            if candidates.size == 0:
                raise ValueError("all vertices are isolated; no valid query sources")
        else:
            candidates = np.arange(num_vertices, dtype=np.int64)
        # Popularity order: a deterministic hash shuffle of the candidates,
        # so the hot set is scattered over the id space (not just low ids).
        order = np.argsort(hash64(candidates.astype(np.uint64), seed=self.seed), kind="stable")
        pool = min(self.pool, candidates.size)
        ranked = candidates[order[:pool]]
        ranks = zipf_ranks(self.num_queries, pool, self.skew, rng=self.seed + 1)
        return ranked[ranks]

    def generate(self, num_vertices: int, degrees: np.ndarray | None = None) -> list[Query]:
        """Materialise the query stream for a graph of ``num_vertices``."""
        return [
            Query(program=self.program, source=int(s), max_hops=self.max_hops)
            for s in self.sources(num_vertices, degrees)
        ]

    def describe(self) -> dict:
        """JSON-stable description for bench artifacts."""
        return {
            "num_queries": self.num_queries,
            "skew": self.skew,
            "pool": self.pool,
            "seed": self.seed,
            "program": self.program,
            "max_hops": self.max_hops,
        }


@dataclass(frozen=True)
class MixedWorkload:
    """A pinned closed-loop stream mixing reads with edge-update batches.

    No real "millions of users" workload is pure reads: profiles follow each
    other while timelines are queried.  This workload interleaves a
    :class:`ZipfWorkload` query stream with
    :class:`repro.dynamic.EdgeDelta` insertion batches at a configurable
    ``update_rate``, deterministically: operation ``i`` is an update batch
    exactly when the seeded per-op draw falls under the rate, so the same
    spec replays the same read/update interleaving on any machine.

    Parameters
    ----------
    queries:
        The read side of the stream (popularity skew, program, length).
    update_rate:
        Fraction of operations that are update batches (``0.0``–``0.9``).
        The total operation count stays ``queries.num_queries``; reads are
        the remainder.
    edges_per_update:
        Undirected insertions per update batch.
    update_style:
        ``"uniform"`` or ``"pa"`` (see :func:`repro.dynamic.update_stream`).
    update_seed:
        Drives both the interleaving draw and the update-stream generator.
    """

    queries: ZipfWorkload | None = None
    update_rate: float = 0.1
    edges_per_update: int = 256
    update_style: str = "uniform"
    update_seed: int = 23

    def __post_init__(self) -> None:
        if self.queries is None:
            object.__setattr__(self, "queries", ZipfWorkload())
        if not 0.0 <= self.update_rate <= 0.9:
            raise ValueError(
                f"update_rate must be in [0, 0.9], got {self.update_rate}"
            )
        if self.edges_per_update < 1:
            raise ValueError(
                f"edges_per_update must be >= 1, got {self.edges_per_update}"
            )

    def generate(self, edges, degrees: np.ndarray | None = None) -> list:
        """Materialise the operation stream for a prepared edge list.

        Returns a list interleaving :class:`Query` objects with
        :class:`repro.dynamic.EdgeDelta` batches, in replay order.
        """
        from repro.dynamic.delta import update_stream

        num_ops = self.queries.num_queries
        rng = make_rng(self.update_seed)
        is_update = rng.random(num_ops) < self.update_rate
        num_updates = int(np.count_nonzero(is_update))
        reads = self.queries.generate(edges.num_vertices, degrees=degrees)
        deltas = (
            update_stream(
                edges,
                num_batches=num_updates,
                edges_per_batch=self.edges_per_update,
                style=self.update_style,
                seed=self.update_seed + 1,
            )
            if num_updates
            else []
        )
        ops: list = []
        read_it = iter(reads)
        delta_it = iter(deltas)
        for flag in is_update:
            ops.append(next(delta_it) if flag else next(read_it))
        return ops

    def describe(self) -> dict:
        """JSON-stable description for bench artifacts."""
        return {
            "queries": self.queries.describe(),
            "update_rate": self.update_rate,
            "edges_per_update": self.edges_per_update,
            "update_style": self.update_style,
            "update_seed": self.update_seed,
        }
