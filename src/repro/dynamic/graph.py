"""The mutable graph: partitioned CSR + per-GPU adjacency overlay + versioning.

A :class:`DynamicGraph` layers mutability over the frozen build-time pipeline:

* the **clean CSR** is a regular :class:`repro.partition.PartitionedGraph`
  (degree separation, modular distributor, four subgraphs per GPU), rebuilt
  only at *compaction* time;
* insertions land in an :class:`OverlayBuffer` — an append-friendly adjacency
  side-structure categorized per GPU by the same distributor rules as the
  CSR edges (against the delegate set frozen at the last compaction).  The
  traversal engine relaxes overlay edges from every super-step's frontier,
  so queries always see the union graph without any rebuild;
* every :meth:`DynamicGraph.apply` bumps a monotonically increasing
  ``version`` (the serve layer tags cache keys with it), and *compaction* —
  re-running degree separation, the distributor and the subgraph builder on
  the current edge set — fires when the overlay exceeds a configurable
  fraction of the edges, when enough vertices crossed the degree threshold
  (delegate-set maintenance), or when a deletion touches a CSR-resident edge
  (CSR rows cannot shrink in place);
* deletions of overlay-resident edges shrink the overlay directly and never
  force a rebuild.

:class:`DynamicEngine` is the runnable face of a dynamic graph: it keeps a
:class:`repro.core.engine.TraversalEngine` bound to the *current* partitioned
CSR (transparently rebuilding it — and its execution backend — after a
compaction) and forwards every ``run``/``run_batch``/``run_many`` with the
live overlay, so :class:`repro.serve.QueryService` and the session facade
serve mutable graphs through the unchanged engine interface.
"""

from __future__ import annotations

import numpy as np

from repro.core.engine import TraversalEngine
from repro.dynamic.delta import AppliedDelta, EdgeDelta
from repro.graph.edgelist import EdgeList
from repro.partition.delegates import suggest_threshold
from repro.partition.layout import ClusterLayout
from repro.partition.subgraphs import PartitionedGraph, build_partitions

__all__ = ["OverlayBuffer", "DynamicGraph", "DynamicEngine"]


class OverlayBuffer:
    """Per-GPU adjacency overlay: edges inserted since the last compaction.

    Edges are stored as parallel global-id arrays; their per-GPU assignment
    (:meth:`edges_per_gpu`, via the distributor's owner rules against the
    delegate set frozen at the last compaction) is derived on demand for
    reporting.  A lazily-rebuilt sort-by-source index serves the
    per-super-step frontier relaxation.
    """

    def __init__(self, graph: PartitionedGraph) -> None:
        self._graph = graph
        self._src = np.zeros(0, dtype=np.int64)
        self._dst = np.zeros(0, dtype=np.int64)
        # Per-edge weights ride along exactly when the clean CSR is weighted.
        self._w = np.zeros(0, dtype=np.float64) if graph.is_weighted else None
        self._sorted: tuple | None = None

    # ------------------------------------------------------------------ #
    # Contents
    # ------------------------------------------------------------------ #
    @property
    def num_edges(self) -> int:
        """Directed edges currently resident in the overlay."""
        return int(self._src.size)

    @property
    def empty(self) -> bool:
        """Whether the overlay holds no edges."""
        return self._src.size == 0

    def edges_per_gpu(self) -> np.ndarray:
        """Directed overlay edges assigned to each GPU.

        Computed on demand by the *real* edge distributor (Algorithm 1)
        against the frozen delegate set — so the balance reported is exactly
        what compaction will later materialise, and the mutation hot path
        never pays for a statistic only reports read.
        """
        if self._src.size == 0:
            return np.zeros(self._graph.num_gpus, dtype=np.int64)
        from repro.partition.distributor import distribute_edges

        assignment = distribute_edges(
            EdgeList(self._src, self._dst, self._graph.num_vertices),
            self._graph.separation,
            self._graph.layout,
        )
        return assignment.edges_per_gpu()

    def add(self, src: np.ndarray, dst: np.ndarray, weights: np.ndarray | None = None) -> None:
        """Append directed edges (already deduplicated against the graph)."""
        if src.size == 0:
            return
        if self._w is not None:
            if weights is None:
                raise ValueError("weighted overlay requires per-edge weights on add")
            self._w = np.concatenate([self._w, np.asarray(weights, dtype=np.float64)])
        self._src = np.concatenate([self._src, src])
        self._dst = np.concatenate([self._dst, dst])
        self._sorted = None

    def remove(self, keys: np.ndarray, num_vertices: int) -> None:
        """Drop the directed edges whose ``src * n + dst`` key is in ``keys``."""
        if keys.size == 0 or self._src.size == 0:
            return
        mine = self._src * np.int64(num_vertices) + self._dst
        keep = ~np.isin(mine, keys)
        self._src = self._src[keep]
        self._dst = self._dst[keep]
        if self._w is not None:
            self._w = self._w[keep]
        self._sorted = None

    def keys(self, num_vertices: int) -> np.ndarray:
        """Sorted ``src * n + dst`` keys of the resident directed edges."""
        return np.sort(self._src * np.int64(num_vertices) + self._dst)

    def edges(self) -> tuple[np.ndarray, np.ndarray, np.ndarray | None]:
        """The resident directed edges as ``(src, dst, weights-or-None)``.

        Read-only copies, in insertion order; coordinator-side drivers
        (PageRank contributions, the program zoo's edge reconstruction)
        fold these alongside the compacted CSR so traversals of a mutable
        graph see the union graph.
        """
        weights = self._w.copy() if self._w is not None else None
        return self._src.copy(), self._dst.copy(), weights

    # ------------------------------------------------------------------ #
    # Frontier relaxation
    # ------------------------------------------------------------------ #
    def _index(self) -> tuple:
        if self._sorted is None:
            order = np.argsort(self._src, kind="stable")
            self._sorted = (
                self._src[order],
                self._dst[order],
                self._w[order] if self._w is not None else None,
            )
        return self._sorted

    def _match(self, ids: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray, int]:
        """Expand the overlay rows of the given source ids.

        Returns ``(dst, src_pos, idx, total)`` where ``dst`` lists every
        overlay destination reachable from ``ids``, ``src_pos[i]`` indexes
        the ``ids`` entry that reaches ``dst[i]`` and ``idx`` indexes the
        traversed edges in the sorted overlay (for weight lookup).
        """
        ssrc, sdst, _ = self._index()
        left = np.searchsorted(ssrc, ids, side="left")
        right = np.searchsorted(ssrc, ids, side="right")
        counts = right - left
        total = int(counts.sum())
        z = np.zeros(0, dtype=np.int64)
        if total == 0:
            return z, z, z, 0
        hot = counts > 0
        starts = left[hot]
        lens = counts[hot]
        ends = np.cumsum(lens)
        idx = np.repeat(starts, lens) + (np.arange(total, dtype=np.int64) - np.repeat(ends - lens, lens))
        src_pos = np.repeat(np.flatnonzero(hot), lens)
        return sdst[idx], src_pos, idx, total

    def propagate(
        self, src_ids: np.ndarray, src_values: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, int]:
        """Push one frontier across the overlay edges.

        Returns ``(dst, source_ids, source_values, edges_examined)`` in the
        shape :meth:`FrontierProgram.visit_value` expects: one entry per
        traversed overlay edge, parallel source ids and values attached.
        """
        if self.empty or src_ids.size == 0:
            z = np.zeros(0, dtype=np.int64)
            return z, z, z, 0
        dst, src_pos, _, total = self._match(src_ids)
        return dst, src_ids[src_pos], src_values[src_pos], total

    def propagate_weighted(
        self, src_ids: np.ndarray, src_values: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, int]:
        """Weighted :meth:`propagate`: also returns the traversed edge weights.

        Only valid on a weighted overlay (clean CSR carries ``edge_weights``);
        used by the engine's overlay relaxation for ``needs_weights``
        programs.
        """
        if self._w is None:
            raise ValueError(
                "overlay carries no edge weights; the underlying graph is unweighted"
            )
        if self.empty or src_ids.size == 0:
            z = np.zeros(0, dtype=np.int64)
            return z, z, z, np.zeros(0, dtype=np.float64), 0
        dst, src_pos, idx, total = self._match(src_ids)
        weights = self._sorted[2][idx]
        return dst, src_ids[src_pos], src_values[src_pos], weights, total

    def propagate_batch(
        self, src_ids: np.ndarray, src_words: np.ndarray, nwords: int
    ) -> tuple[np.ndarray, np.ndarray, int]:
        """Push one batched frontier (lane words) across the overlay edges.

        Returns ``(dst, words, edges_examined)`` with ``dst`` deduplicated
        and ``words`` the OR of every reaching source's lane words.
        """
        if self.empty or src_ids.size == 0:
            return (
                np.zeros(0, dtype=np.int64),
                np.zeros((0, nwords), dtype=np.uint64),
                0,
            )
        dst, src_pos, _, total = self._match(src_ids)
        if total == 0:
            return dst, np.zeros((0, nwords), dtype=np.uint64), 0
        unique, inverse = np.unique(dst, return_inverse=True)
        words = np.zeros((unique.size, nwords), dtype=np.uint64)
        np.bitwise_or.at(words, inverse, src_words[src_pos])
        return unique, words, total


class DynamicGraph:
    """A mutable graph: clean partitioned CSR + overlay + version counter.

    Parameters
    ----------
    edges:
        The prepared (symmetric, deduplicated) starting edge list; copied,
        so the caller's arrays are never mutated.
    layout:
        Cluster geometry (a :class:`repro.partition.ClusterLayout` or the
        CLI's ``AxBxC`` notation).
    threshold:
        Degree threshold ``TH``; ``None`` derives the paper's suggestion
        from the starting graph and keeps it fixed across compactions (a
        moving threshold would make update streams non-comparable).
    max_overlay_fraction:
        Compact once the overlay exceeds this fraction of all directed
        edges.
    max_degree_crossings:
        Compact once this many vertices sit on the wrong side of the degree
        threshold relative to the frozen delegate set (delegate-set
        maintenance; crossings are correctness-neutral but erode the
        degree-separation performance contract).  ``None`` scales the budget
        with the graph: ``max(64, n / 64)``.
    partitioned:
        Adopt an existing partitioning of ``edges`` (must match ``layout``
        and ``threshold``) instead of rebuilding — the session facade uses
        this to turn an already-built static graph dynamic for free.
    """

    def __init__(
        self,
        edges: EdgeList,
        layout: ClusterLayout | str,
        threshold: int | None = None,
        *,
        max_overlay_fraction: float = 0.05,
        max_degree_crossings: int | None = None,
        partitioned: PartitionedGraph | None = None,
        weights_seed: int = 0,
    ) -> None:
        if not isinstance(layout, ClusterLayout):
            layout = ClusterLayout.from_notation(layout)
        if not 0.0 < max_overlay_fraction <= 1.0:
            raise ValueError(
                f"max_overlay_fraction must be in (0, 1], got {max_overlay_fraction}"
            )
        if max_degree_crossings is None:
            max_degree_crossings = max(64, edges.num_vertices // 64)
        if max_degree_crossings < 1:
            raise ValueError(
                f"max_degree_crossings must be >= 1, got {max_degree_crossings}"
            )
        self.layout = layout
        self.edges = edges.copy()
        self.threshold = (
            int(threshold)
            if threshold is not None
            else suggest_threshold(self.edges, layout.num_gpus)
        )
        self.max_overlay_fraction = float(max_overlay_fraction)
        self.max_degree_crossings = int(max_degree_crossings)
        #: Seed of the edge-keyed weights derived for weighted insertions
        #: that carry no explicit weight (must match the generator's
        #: ``weights_seed`` for the derived weights to line up).
        self.weights_seed = int(weights_seed)
        self.version = 0
        self.partition_epoch = 0
        self.compactions = 0
        n = self.edges.num_vertices
        self._keys = np.sort(self.edges.src * np.int64(n) + self.edges.dst)
        if self._keys.size and np.any(self._keys[1:] == self._keys[:-1]):
            raise ValueError(
                "edges contain duplicates; pass a prepared() edge list"
            )
        self.degrees = np.bincount(self.edges.src, minlength=n).astype(np.int64)
        if partitioned is not None:
            if partitioned.threshold != self.threshold or partitioned.layout != layout:
                raise ValueError(
                    "adopted partitioning disagrees with the requested "
                    f"layout/threshold (TH={partitioned.threshold} vs {self.threshold})"
                )
            self.partitioned = partitioned
            self.overlay = OverlayBuffer(partitioned)
        else:
            self._compact_now()
            self.partition_epoch = 0  # the initial build is not a compaction
            self.compactions = 0

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def num_vertices(self) -> int:
        """Vertex universe size (fixed for the lifetime of the graph)."""
        return self.edges.num_vertices

    @property
    def num_directed_edges(self) -> int:
        """Directed edges currently present (CSR + overlay)."""
        return self.edges.num_edges

    @property
    def overlay_fraction(self) -> float:
        """Overlay share of all directed edges (the compaction trigger)."""
        total = self.edges.num_edges
        return self.overlay.num_edges / total if total else 0.0

    @property
    def pending_crossings(self) -> int:
        """Vertices on the wrong side of TH relative to the frozen delegates."""
        now_delegate = self.degrees > self.threshold
        return int(np.count_nonzero(now_delegate != self.partitioned.separation.is_delegate))

    @staticmethod
    def _in_sorted(sorted_keys: np.ndarray, values: np.ndarray) -> np.ndarray:
        """Membership of ``values`` in a sorted unique key array, by bisection."""
        if sorted_keys.size == 0 or values.size == 0:
            return np.zeros(values.size, dtype=bool)
        pos = np.searchsorted(sorted_keys, values)
        return (pos < sorted_keys.size) & (
            sorted_keys[np.minimum(pos, sorted_keys.size - 1)] == values
        )

    def has_edge(self, u: int, v: int) -> bool:
        """Whether the directed edge ``u -> v`` is currently present."""
        key = np.int64(u) * np.int64(self.num_vertices) + np.int64(v)
        pos = np.searchsorted(self._keys, key)
        return bool(pos < self._keys.size and self._keys[pos] == key)

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #
    def apply(self, delta: EdgeDelta, symmetrize: bool = True) -> AppliedDelta:
        """Apply one delta batch; returns the effective changes.

        Insertions already present and deletions of absent edges are dropped
        (idempotent updates); self-loops are rejected by dropping; with
        ``symmetrize`` (the default) every directed update also applies its
        reverse, keeping the graph symmetric as the engine requires.
        """
        n = self.num_vertices
        weighted = self.edges.weights is not None
        ins_s, ins_d = delta.insert_src, delta.insert_dst
        ins_w = delta.insert_weights
        if ins_w is not None and not weighted:
            raise ValueError(
                "delta carries insert weights but the graph is unweighted"
            )
        del_s, del_d = delta.delete_src, delta.delete_dst
        for arr in (ins_s, ins_d, del_s, del_d):
            if arr.size and arr.max() >= n:
                raise ValueError(f"edge endpoint {int(arr.max())} out of range [0, {n})")
        if symmetrize:
            ins_s, ins_d = np.concatenate([ins_s, ins_d]), np.concatenate([ins_d, ins_s])
            del_s, del_d = np.concatenate([del_s, del_d]), np.concatenate([del_d, del_s])
            if ins_w is not None:
                ins_w = np.concatenate([ins_w, ins_w])
        keep = ins_s != ins_d
        ins_s, ins_d = ins_s[keep], ins_d[keep]
        if ins_w is not None:
            ins_w = ins_w[keep]

        ins_keys = np.unique(ins_s * np.int64(n) + ins_d)
        ins_keys = ins_keys[~self._in_sorted(self._keys, ins_keys)]
        del_keys = np.unique(del_s * np.int64(n) + del_d)
        del_keys = del_keys[self._in_sorted(self._keys, del_keys)]

        overlay_keys = self.overlay.keys(n)
        del_in_overlay = del_keys[np.isin(del_keys, overlay_keys, assume_unique=True)]
        del_in_csr = del_keys[~np.isin(del_keys, overlay_keys, assume_unique=True)]

        # ---- apply to the canonical edge list + degree sequence ---------- #
        new_src = ins_keys // n
        new_dst = ins_keys % n
        new_w = None
        if weighted:
            if ins_w is not None and ins_w.size:
                # Min-merge the proposal weights per directed key (duplicate
                # proposals behave like the build-time dedup), then pick the
                # weight of each effective insertion.
                prop_keys = ins_s * np.int64(n) + ins_d
                order = np.argsort(prop_keys, kind="stable")
                sk, sw = prop_keys[order], ins_w[order]
                starts = np.flatnonzero(
                    np.concatenate([np.ones(1, dtype=bool), sk[1:] != sk[:-1]])
                )
                new_w = np.minimum.reduceat(sw, starts)[
                    np.searchsorted(sk[starts], ins_keys)
                ]
            else:
                from repro.graph.weights import edge_keyed_weights

                new_w = edge_keyed_weights(new_src, new_dst, n, seed=self.weights_seed)
        src, dst = self.edges.src, self.edges.dst
        w = self.edges.weights
        if del_keys.size:
            edge_keys = src * np.int64(n) + dst
            keep = ~np.isin(edge_keys, del_keys)
            src, dst = src[keep], dst[keep]
            if w is not None:
                w = w[keep]
        if new_src.size:
            src = np.concatenate([src, new_src])
            dst = np.concatenate([dst, new_dst])
            if w is not None:
                w = np.concatenate([w, new_w])
        self.edges = EdgeList(src, dst, n, weights=w)
        # Both sides are sorted and unique, so the key set updates by sorted
        # merge/drop instead of union1d's full re-hash of all m keys.
        if del_keys.size:
            keep = np.ones(self._keys.size, dtype=bool)
            keep[np.searchsorted(self._keys, del_keys)] = False
            self._keys = self._keys[keep]
        if ins_keys.size:
            self._keys = np.insert(
                self._keys, np.searchsorted(self._keys, ins_keys), ins_keys
            )
        if new_src.size:
            np.add.at(self.degrees, new_src, 1)
        if del_keys.size:
            np.subtract.at(self.degrees, del_keys // n, 1)

        # ---- overlay bookkeeping ----------------------------------------- #
        self.overlay.add(new_src, new_dst, new_w)
        self.overlay.remove(del_in_overlay, n)
        self.version += 1

        compacted = False
        reason = ""
        if del_in_csr.size:
            # CSR rows cannot shrink in place; a structural delete forces the
            # rebuild immediately so traversals never see a ghost edge.
            compacted, reason = True, "csr-delete"
        elif self.overlay_fraction > self.max_overlay_fraction:
            compacted, reason = True, "overlay-fraction"
        elif self.pending_crossings > self.max_degree_crossings:
            compacted, reason = True, "degree-crossings"
        if compacted:
            self._compact_now()
        return AppliedDelta(
            insert_src=new_src,
            insert_dst=new_dst,
            delete_src=del_keys // n,
            delete_dst=del_keys % n,
            version=self.version,
            compacted=compacted,
            compact_reason=reason,
            insert_weights=new_w,
        )

    def compact(self) -> None:
        """Force a compaction: rebuild the clean CSR from the current edges."""
        self._compact_now()

    def _compact_now(self) -> None:
        self.partitioned = build_partitions(self.edges, self.layout, self.threshold)
        self.overlay = OverlayBuffer(self.partitioned)
        self.partition_epoch += 1
        self.compactions += 1

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"DynamicGraph(n={self.num_vertices}, m={self.num_directed_edges}, "
            f"version={self.version}, overlay={self.overlay.num_edges}, "
            f"compactions={self.compactions})"
        )


class DynamicEngine:
    """A traversal engine over a :class:`DynamicGraph`.

    Presents the same running surface as :class:`TraversalEngine`
    (``run`` / ``run_batch`` / ``run_many`` / ``options`` / backend
    management) while forwarding the live overlay into every run and
    transparently rebinding to the freshly-partitioned CSR after a
    compaction — including re-resolving the execution backend, whose
    shared-memory export of the old CSR would otherwise go stale.
    """

    def __init__(
        self,
        dynamic: DynamicGraph,
        options=None,
        hardware=None,
        backend=None,
        kernels=None,
        engine: TraversalEngine | None = None,
    ) -> None:
        self.dynamic = dynamic
        self._options = options
        self._hardware = hardware
        self._backend_spec = self._check_backend_spec(backend)
        self._kernels_spec = kernels
        self._engine: TraversalEngine | None = None
        self._engine_epoch = -1
        if engine is not None:
            if engine.graph is not dynamic.partitioned:
                raise ValueError("adopted engine is not bound to the dynamic graph's CSR")
            self._engine = engine
            self._engine_epoch = dynamic.partition_epoch
            self._options = engine.options
            self._hardware = engine.hardware
            self._backend_spec = self._check_backend_spec(engine._backend_spec)
            self._kernels_spec = engine._kernels_spec

    @staticmethod
    def _check_backend_spec(backend):
        """Reject live backend instances: they cannot follow a compaction.

        A backend object is bound to the CSR it was built over (the process
        backend's shared-memory export, the inline backend's graph
        reference); after a compaction it would silently keep traversing the
        *old* graph.  Name specs (``"inline"`` / ``"process"`` / ``None``)
        re-resolve against the fresh CSR, so only those are accepted.
        """
        from repro.exec.backend import ExecutionBackend

        if isinstance(backend, ExecutionBackend):
            raise ValueError(
                "DynamicEngine cannot use a live backend instance — it stays "
                "bound to the pre-compaction graph; pass the backend name "
                f"({backend.name!r}) instead"
            )
        return backend

    # ------------------------------------------------------------------ #
    # Engine plumbing
    # ------------------------------------------------------------------ #
    def _resolve(self) -> TraversalEngine:
        if self._engine is None or self._engine_epoch != self.dynamic.partition_epoch:
            if self._engine is not None:
                self._engine.close()
            self._engine = TraversalEngine(
                self.dynamic.partitioned,
                options=self._options,
                hardware=self._hardware,
                backend=self._backend_spec,
                kernels=self._kernels_spec,
            )
            self._engine_epoch = self.dynamic.partition_epoch
        return self._engine

    @property
    def graph(self) -> PartitionedGraph:
        """The current clean CSR (changes object identity on compaction)."""
        return self.dynamic.partitioned

    @property
    def graph_root(self) -> DynamicGraph:
        """The stable identity object for cache keying (never changes)."""
        return self.dynamic

    @property
    def graph_version(self) -> int:
        """Monotonic mutation counter (cache keys must include it)."""
        return self.dynamic.version

    @property
    def options(self):
        return self._resolve().options

    @property
    def hardware(self):
        return self._resolve().hardware

    @property
    def backend_name(self) -> str:
        return self._resolve().backend_name

    def use_backend(self, backend) -> "DynamicEngine":
        backend = self._check_backend_spec(backend)
        self._resolve().use_backend(backend)
        self._backend_spec = backend
        return self

    @property
    def provider_name(self) -> str:
        return self._resolve().provider_name

    def use_kernels(self, kernels) -> "DynamicEngine":
        """Switch kernel providers (providers are stateless, so unlike
        backends a live instance is fine — it follows compaction trivially)."""
        self._resolve().use_kernels(kernels)
        self._kernels_spec = kernels
        return self

    def close(self) -> None:
        if self._engine is not None:
            self._engine.close()

    def __enter__(self) -> "DynamicEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Execution (overlay always rides along)
    # ------------------------------------------------------------------ #
    def run(self, program, init=None):
        """Run one frontier program over the current graph + overlay."""
        return self._resolve().run(program, init=init, overlay=self.dynamic.overlay)

    def run_batch(self, program):
        """Run one batched program over the current graph + overlay."""
        return self._resolve().run_batch(program, overlay=self.dynamic.overlay)

    def run_many(self, programs, batch_size=None):
        """Run several programs (batched where possible) over graph + overlay."""
        return self._resolve().run_many(
            programs, batch_size=batch_size, overlay=self.dynamic.overlay
        )

    # ------------------------------------------------------------------ #
    # Mutation passthrough
    # ------------------------------------------------------------------ #
    def apply_delta(self, delta: EdgeDelta, symmetrize: bool = True) -> AppliedDelta:
        """Apply one update batch to the underlying dynamic graph."""
        return self.dynamic.apply(delta, symmetrize=symmetrize)
