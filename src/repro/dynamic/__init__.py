"""Mutable graphs (``repro.dynamic``): deltas, overlays, incremental repair.

Every graph in the build-time pipeline is frozen; this package makes it
mutable without giving up the degree-separated machinery:

* :mod:`repro.dynamic.delta` — :class:`EdgeDelta` update batches and the
  deterministic :func:`update_stream` generator (uniform and
  preferential-attachment styles, pinned by seed);
* :mod:`repro.dynamic.graph` — :class:`DynamicGraph`: the partitioned CSR
  plus a per-GPU adjacency overlay for fresh insertions, a monotonically
  increasing ``version``, delegate-set crossing tracking, and compaction
  back into clean CSR once the overlay outgrows its budget;
  :class:`DynamicEngine` runs any frontier program over CSR + overlay;
* :mod:`repro.dynamic.incremental` — :class:`MaintainedLevels`,
  :class:`MaintainedComponents` and :class:`MaintainedSSSP`: keep a
  traversal answer current across deltas by resuming the engine from a
  bounded repair frontier (bit-identical to full recompute, at a fraction
  of the traversal work).

Typical use::

    import repro
    from repro.dynamic import DynamicGraph, DynamicEngine, EdgeDelta
    from repro.dynamic import MaintainedLevels

    dyn = DynamicGraph(edges, layout="2x1x2", threshold=32)
    engine = DynamicEngine(dyn)
    bfs = MaintainedLevels(engine, source=0)
    applied = engine.apply_delta(EdgeDelta.inserts([[1, 9], [4, 7]]))
    bfs.update(applied)        # bounded repair, not a re-traversal
    bfs.verify()               # bit-identical to a from-scratch run
"""

from repro.dynamic.delta import AppliedDelta, EdgeDelta, UPDATE_STYLES, update_stream
from repro.dynamic.graph import DynamicEngine, DynamicGraph, OverlayBuffer
from repro.dynamic.incremental import (
    ComponentsRepair,
    LevelRepair,
    MaintainedComponents,
    MaintainedLevels,
    MaintainedSSSP,
    MaintenanceStats,
    SSSPRepair,
    seeded_init,
)

__all__ = [
    "AppliedDelta",
    "ComponentsRepair",
    "DynamicEngine",
    "DynamicGraph",
    "EdgeDelta",
    "LevelRepair",
    "MaintainedComponents",
    "MaintainedLevels",
    "MaintainedSSSP",
    "MaintenanceStats",
    "OverlayBuffer",
    "SSSPRepair",
    "UPDATE_STYLES",
    "seeded_init",
    "update_stream",
]
