"""Incremental traversal maintenance: repair answers instead of recomputing.

An edge insertion can only *improve* monotone traversal answers — BFS hop
levels can only shrink, connected-component labels can only decrease — and
only downstream of the inserted edge's endpoints.  The maintainers here
exploit that: each keeps the last full answer, and on an applied delta seeds
a **repair frontier** with exactly the vertices whose value the new edges
improve, then resumes the :class:`repro.core.engine.TraversalEngine`
super-step loop from those seeds (the engine's resumable-from-frontier entry
point) under label-correcting ``accept`` semantics.  The repaired answer is
**bit-identical** to a from-scratch run on the mutated graph — both converge
to the same unique fixpoint (true hop distances; minimum component labels) —
while examining orders of magnitude fewer edges when the delta is small.

Deletions can make answers *worse*, which monotone repair cannot express, so
deltas carrying effective deletions fall back to a full recompute (the graph
itself has already compacted the deletion away; see
:class:`repro.dynamic.DynamicGraph`).

:class:`MaintainedLevels`, :class:`MaintainedComponents` and
:class:`MaintainedSSSP` wrap the maintained programs; all count repairs,
recomputes, skipped no-op deltas and the modeled/examined work of every
maintenance traversal, which is what the ``dyn-*`` bench scenarios record
for the incremental-vs-recompute comparison.  The SSSP maintainer extends
the same monotone argument to weighted distances: an inserted edge
``(u, v, w)`` can only improve ``dist[v]`` to ``dist[u] + w``, so the
repair seeds are the endpoints the insertion actually improved and the
repair traversal is the delta-stepping driver resumed from them.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.programs.base import FrontierProgram, ProgramInit, VisitContext
from repro.core.programs.bfs_levels import BFSLevels
from repro.core.programs.components import ConnectedComponents
from repro.core.results import BFSResult, TraversalResult
from repro.core.state import UNVISITED
from repro.dynamic.delta import AppliedDelta
from repro.dynamic.graph import DynamicEngine
from repro.partition.subgraphs import PartitionedGraph
from repro.weighted.sssp import DeltaSteppingSSSP

__all__ = [
    "seeded_init",
    "LevelRepair",
    "ComponentsRepair",
    "SSSPRepair",
    "MaintenanceStats",
    "MaintainedLevels",
    "MaintainedComponents",
    "MaintainedSSSP",
]

_MAXI = np.int64(np.iinfo(np.int64).max)


def seeded_init(
    graph: PartitionedGraph, values: np.ndarray, frontier: np.ndarray
) -> ProgramInit:
    """Scatter a global per-vertex value array into engine-ready state.

    ``values`` is a length-``n`` int64 array (``-1`` = unset) and
    ``frontier`` the global vertex ids forming the resume frontier.  The
    values land on whichever side (local normal slot or replicated delegate)
    the degree separation assigns each vertex, exactly inverting
    :meth:`repro.core.state.TraversalState.gather_values`.
    """
    values = np.asarray(values, dtype=np.int64)
    if values.shape != (graph.num_vertices,):
        raise ValueError(
            f"values must have shape ({graph.num_vertices},), got {values.shape}"
        )
    normal_values = []
    for gpu in graph.gpus:
        vals = np.full(gpu.num_local, UNVISITED, dtype=np.int64)
        if gpu.num_local:
            owned = gpu.owned_global_ids()
            normal = gpu.local_is_normal
            vals[normal] = values[owned[normal]]
        normal_values.append(vals)
    delegate_values = values[graph.delegate_vertices].copy()

    frontier = np.unique(np.asarray(frontier, dtype=np.int64))
    delegate_ids = graph.delegate_id_of_vertex(frontier)
    is_delegate = delegate_ids >= 0
    delegate_frontier = delegate_ids[is_delegate]
    normals = frontier[~is_delegate]
    owners = graph.layout.flat_gpu_of(normals)
    slots = graph.layout.local_index_of(normals)
    normal_frontiers = [
        np.sort(slots[owners == g]) for g in range(graph.num_gpus)
    ]
    return ProgramInit(
        normal_values=normal_values,
        delegate_values=delegate_values,
        normal_frontiers=normal_frontiers,
        delegate_frontier=delegate_frontier,
    )


class LevelRepair(FrontierProgram):
    """Label-correcting BFS repair: resume from improved seeds, only improve.

    Unlike :class:`BFSLevels` (visit-once, level = super-step number), repair
    levels are *not* step numbers — a seed at hop 7 pushes 8 at repair step 1
    — so the program carries the level as an 8-byte payload on the exchange
    and a 64-bit min-reduction on the delegate channel, with monotone
    ``proposed < current`` acceptance.  Backward-pull direction optimization
    is off: pulls assume any frontier parent is final, which label
    correcting breaks.
    """

    name = "bfs-repair"
    payload_exchange = True
    delegate_channel = "values"
    direction_optimized_ok = False

    def __init__(self, source: int, values: np.ndarray, frontier: np.ndarray) -> None:
        self.source = int(source)
        self._values = values
        self._frontier = frontier

    def init_state(self, graph: PartitionedGraph) -> ProgramInit:
        return seeded_init(graph, self._values, self._frontier)

    def visit_value(self, ctx: VisitContext) -> np.ndarray:
        if ctx.source_values is None:
            raise RuntimeError(
                "LevelRepair needs source levels; the engine must run it with "
                "payload support"
            )
        return ctx.source_values + 1

    def accept(self, current: np.ndarray, proposed: np.ndarray) -> np.ndarray:
        return (current == UNVISITED) | (proposed < current)

    def make_result(self, values: np.ndarray, base: dict) -> BFSResult:
        return BFSResult(source=self.source, distances=values, **base)


class ComponentsRepair(ConnectedComponents):
    """Min-label repair: resume label propagation from re-labelled seeds."""

    name = "components-repair"

    def __init__(self, values: np.ndarray, frontier: np.ndarray) -> None:
        self._values = values
        self._frontier = frontier

    def init_state(self, graph: PartitionedGraph) -> ProgramInit:
        return seeded_init(graph, self._values, self._frontier)


class SSSPRepair(DeltaSteppingSSSP):
    """Delta-stepping repair: resume the bucketed relaxation from seeds.

    The delta-stepping driver is already label-correcting (any vertex whose
    tentative distance improves re-enters the pending set), so repair needs
    no new acceptance semantics — only a seeded initial state.  The values
    are distance *bit patterns* (see :mod:`repro.weighted.sssp`); the
    ``UNVISITED`` convention matches the engine's, so :func:`seeded_init`
    scatters them unchanged.
    """

    name = "sssp-repair"

    def __init__(
        self,
        source: int,
        delta: float | str,
        values: np.ndarray,
        frontier: np.ndarray,
    ) -> None:
        super().__init__(source, delta=delta)
        self._values = values
        self._frontier = frontier

    def init_state(self, graph: PartitionedGraph) -> ProgramInit:
        return seeded_init(graph, self._values, self._frontier)


@dataclass
class MaintenanceStats:
    """Cumulative work accounting of one maintainer."""

    #: Applied deltas answered by a bounded repair traversal.
    repairs: int = 0
    #: Applied deltas answered by a full from-scratch recompute.
    recomputes: int = 0
    #: Applied deltas that improved nothing (answer kept as-is).
    skipped: int = 0
    #: Edges examined by repair traversals.
    repair_edges: int = 0
    #: Super-steps run by repair traversals.
    repair_iterations: int = 0
    #: Modeled milliseconds of repair traversals.
    repair_modeled_ms: float = 0.0
    #: Edges examined by full recomputes (the initial run included).
    recompute_edges: int = 0
    #: Modeled milliseconds of full recomputes (the initial run included).
    recompute_modeled_ms: float = 0.0

    def as_dict(self) -> dict:
        return {
            "repairs": self.repairs,
            "recomputes": self.recomputes,
            "skipped": self.skipped,
            "repair_edges": self.repair_edges,
            "repair_iterations": self.repair_iterations,
            "repair_modeled_ms": self.repair_modeled_ms,
            "recompute_edges": self.recompute_edges,
            "recompute_modeled_ms": self.recompute_modeled_ms,
        }


class _Maintainer:
    """Shared machinery of the two maintained programs."""

    def __init__(self, engine: DynamicEngine) -> None:
        self.engine = engine
        self.stats = MaintenanceStats()
        self.result: TraversalResult = self._count_recompute(self._full_run())
        self.version = engine.graph_version

    # -- hooks ---------------------------------------------------------- #
    def _full_run(self) -> TraversalResult:
        raise NotImplementedError

    def _seed(self, applied: AppliedDelta):
        """Return ``(new_values, frontier)`` or ``None`` when nothing improves."""
        raise NotImplementedError

    def _repair_program(self, values: np.ndarray, frontier: np.ndarray):
        raise NotImplementedError

    @property
    def values(self) -> np.ndarray:
        """The maintained per-vertex answer array."""
        raise NotImplementedError

    # -- maintenance ---------------------------------------------------- #
    def _count_recompute(self, result: TraversalResult) -> TraversalResult:
        self.stats.recomputes += 1
        self.stats.recompute_edges += int(result.total_edges_examined)
        self.stats.recompute_modeled_ms += float(result.timing.elapsed_ms)
        return result

    def update(self, applied: AppliedDelta) -> TraversalResult:
        """Bring the answer up to date with one applied delta.

        Insert-only deltas run a bounded repair from the improved seeds;
        deltas with effective deletions — and deltas applied out of order
        (the graph moved more than one version since the last update) —
        fall back to a full recompute.  Returns the current result either
        way; it is always bit-identical to a from-scratch run.
        """
        if applied.num_deletes or applied.version != self.version + 1:
            self.result = self._count_recompute(self._full_run())
        else:
            seeds = self._seed(applied)
            if seeds is None:
                self.stats.skipped += 1
            else:
                values, frontier = seeds
                result = self.engine.run(self._repair_program(values, frontier))
                self.stats.repairs += 1
                self.stats.repair_edges += int(result.total_edges_examined)
                self.stats.repair_iterations += int(result.iterations)
                self.stats.repair_modeled_ms += float(result.timing.elapsed_ms)
                self.result = result
        self.version = applied.version
        return self.result

    def verify(self) -> TraversalResult:
        """Recompute from scratch and assert the maintained answer matches."""
        fresh = self._full_run()
        if not np.array_equal(self.values, self._values_of(fresh)):
            mismatches = int(np.count_nonzero(self.values != self._values_of(fresh)))
            raise AssertionError(
                f"maintained {self.result.algorithm} answer diverged from the "
                f"from-scratch run on {mismatches} vertices"
            )
        return fresh

    @staticmethod
    def _values_of(result: TraversalResult) -> np.ndarray:
        raise NotImplementedError


class MaintainedLevels(_Maintainer):
    """BFS hop levels from one source, repaired across edge insertions."""

    def __init__(self, engine: DynamicEngine, source: int) -> None:
        self.source = int(source)
        super().__init__(engine)

    def _full_run(self) -> TraversalResult:
        return self.engine.run(BFSLevels(source=self.source))

    @property
    def values(self) -> np.ndarray:
        return self.result.distances

    @staticmethod
    def _values_of(result: TraversalResult) -> np.ndarray:
        return result.distances

    def _seed(self, applied: AppliedDelta):
        dist = self.result.distances
        du = dist[applied.insert_src]
        ok = du >= 0
        if not np.any(ok):
            return None
        current = np.where(dist >= 0, dist, _MAXI)
        proposed = current.copy()
        np.minimum.at(proposed, applied.insert_dst[ok], du[ok] + 1)
        changed = np.flatnonzero(proposed < current)
        if changed.size == 0:
            return None
        values = dist.copy()
        values[changed] = proposed[changed]
        return values, changed

    def _repair_program(self, values: np.ndarray, frontier: np.ndarray):
        return LevelRepair(self.source, values, frontier)


class MaintainedComponents(_Maintainer):
    """Connected-component labels, repaired across edge insertions."""

    def _full_run(self) -> TraversalResult:
        return self.engine.run(ConnectedComponents())

    @property
    def values(self) -> np.ndarray:
        return self.result.labels

    @staticmethod
    def _values_of(result: TraversalResult) -> np.ndarray:
        return result.labels

    def _seed(self, applied: AppliedDelta):
        labels = self.result.labels
        proposed = labels.copy()
        np.minimum.at(proposed, applied.insert_dst, labels[applied.insert_src])
        changed = np.flatnonzero(proposed < labels)
        if changed.size == 0:
            return None
        values = labels.copy()
        values[changed] = proposed[changed]
        return values, changed

    def _repair_program(self, values: np.ndarray, frontier: np.ndarray):
        return ComponentsRepair(values, frontier)


class MaintainedSSSP(_Maintainer):
    """Shortest-path distances from one source, repaired across insertions.

    The maintained values are the int64 distance *bit patterns* of
    :class:`repro.weighted.SSSPResult` — the same encoding the engine folds
    — so seeding, repair and verification all compare exactly, and the
    repaired answer is bit-identical to a from-scratch delta-stepping run
    on the mutated graph.  Requires a weighted dynamic graph; deltas with
    effective deletions recompute, as for the other maintainers.
    """

    def __init__(
        self, engine: DynamicEngine, source: int, delta: float | str = "auto"
    ) -> None:
        self.source = int(source)
        self.delta = delta
        super().__init__(engine)

    def _full_run(self) -> TraversalResult:
        return self.engine.run(DeltaSteppingSSSP(self.source, delta=self.delta))

    @property
    def values(self) -> np.ndarray:
        return self.result.dist_bits

    @staticmethod
    def _values_of(result: TraversalResult) -> np.ndarray:
        return result.dist_bits

    def _seed(self, applied: AppliedDelta):
        bits = self.result.dist_bits
        weights = applied.insert_weights
        if weights is None:  # pragma: no cover - _full_run already rejects
            raise ValueError("MaintainedSSSP needs a weighted dynamic graph")
        reached = bits != UNVISITED
        # Relax each inserted edge once in float space: unreached sources
        # propose nothing, unreached destinations sit at +inf and accept any
        # finite proposal.  Exactly the engine's fold arithmetic (float64
        # add, minimum), so the seeds match what a full run would compute.
        dist = bits.view(np.float64).copy()
        dist[~reached] = np.inf
        ok = reached[applied.insert_src]
        if not np.any(ok):
            return None
        proposed = dist.copy()
        np.minimum.at(
            proposed,
            applied.insert_dst[ok],
            dist[applied.insert_src[ok]] + weights[ok],
        )
        changed = np.flatnonzero(proposed < dist)
        if changed.size == 0:
            return None
        values = bits.copy()
        values[changed] = proposed[changed].view(np.int64)
        return values, changed

    def _repair_program(self, values: np.ndarray, frontier: np.ndarray):
        return SSSPRepair(self.source, self.delta, values, frontier)
