"""Edge deltas and deterministic update streams for mutable graphs.

A :class:`EdgeDelta` is one batch of edge insertions and deletions against a
:class:`repro.dynamic.DynamicGraph`.  Deltas carry *directed* edge arrays;
the graph symmetrizes them on apply (the whole system assumes symmetric
inputs — direction optimization and the locally-symmetric nd/dn/dd subgraphs
depend on it), so callers usually describe each undirected update once.

:func:`update_stream` generates pinned, replayable delta batches the way
:mod:`repro.serve.workload` generates query streams: every draw goes through
:mod:`repro.utils.rng`, so a ``(graph, spec, seed)`` triple produces a
bit-identical stream on any machine, which is what lets the ``dyn-*`` bench
scenarios treat update workloads like any other pinned scenario.  Two styles
are provided:

* ``uniform`` — endpoints drawn uniformly at random (Erdős–Rényi-style
  densification);
* ``pa`` — preferential attachment: the destination is drawn
  degree-weighted against the *evolving* degree sequence (hubs keep getting
  hotter, the usual social-graph growth shape), the source uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.graph.edgelist import EdgeList
from repro.utils.rng import make_rng

__all__ = ["EdgeDelta", "AppliedDelta", "UPDATE_STYLES", "update_stream"]

#: Styles :func:`update_stream` understands.
UPDATE_STYLES = ("uniform", "pa")


def _as_edge_arrays(src, dst) -> tuple[np.ndarray, np.ndarray]:
    src = np.asarray(src, dtype=np.int64).ravel()
    dst = np.asarray(dst, dtype=np.int64).ravel()
    if src.shape != dst.shape:
        raise ValueError(
            f"src and dst must have the same length, got {src.size} and {dst.size}"
        )
    if src.size and (src.min() < 0 or dst.min() < 0):
        raise ValueError("edge endpoints must be non-negative")
    return src, dst


@dataclass(frozen=True)
class EdgeDelta:
    """One batch of directed edge insertions and deletions.

    Attributes
    ----------
    insert_src, insert_dst:
        Parallel ``int64`` arrays of edges to add.
    insert_weights:
        Optional parallel ``float64`` weights for the inserted edges (finite,
        non-negative).  Only meaningful against a weighted graph; when absent
        on a weighted graph the edge-keyed deterministic weights apply.
    delete_src, delete_dst:
        Parallel ``int64`` arrays of edges to remove.
    """

    insert_src: np.ndarray = field(default_factory=lambda: np.zeros(0, dtype=np.int64))
    insert_dst: np.ndarray = field(default_factory=lambda: np.zeros(0, dtype=np.int64))
    delete_src: np.ndarray = field(default_factory=lambda: np.zeros(0, dtype=np.int64))
    delete_dst: np.ndarray = field(default_factory=lambda: np.zeros(0, dtype=np.int64))
    insert_weights: np.ndarray | None = None

    def __post_init__(self) -> None:
        ins = _as_edge_arrays(self.insert_src, self.insert_dst)
        dels = _as_edge_arrays(self.delete_src, self.delete_dst)
        object.__setattr__(self, "insert_src", ins[0])
        object.__setattr__(self, "insert_dst", ins[1])
        object.__setattr__(self, "delete_src", dels[0])
        object.__setattr__(self, "delete_dst", dels[1])
        if self.insert_weights is not None:
            from repro.graph.weights import validate_weights

            object.__setattr__(
                self,
                "insert_weights",
                validate_weights(self.insert_weights, num_edges=ins[0].size),
            )

    @classmethod
    def inserts(cls, pairs, weights=None) -> "EdgeDelta":
        """A pure-insertion delta from an ``(m, 2)`` array of edge pairs."""
        pairs = np.asarray(pairs, dtype=np.int64).reshape(-1, 2)
        return cls(insert_src=pairs[:, 0], insert_dst=pairs[:, 1], insert_weights=weights)

    @classmethod
    def deletes(cls, pairs) -> "EdgeDelta":
        """A pure-deletion delta from an ``(m, 2)`` array of edge pairs."""
        pairs = np.asarray(pairs, dtype=np.int64).reshape(-1, 2)
        return cls(delete_src=pairs[:, 0], delete_dst=pairs[:, 1])

    @property
    def num_inserts(self) -> int:
        """Directed insertions carried (before symmetrization/dedup)."""
        return int(self.insert_src.size)

    @property
    def num_deletes(self) -> int:
        """Directed deletions carried (before symmetrization/dedup)."""
        return int(self.delete_src.size)

    @property
    def empty(self) -> bool:
        """Whether the delta carries no updates at all."""
        return self.num_inserts == 0 and self.num_deletes == 0

    def describe(self) -> dict:
        """JSON-stable summary for artifacts and CLI output."""
        return {"inserts": self.num_inserts, "deletes": self.num_deletes}


@dataclass(frozen=True)
class AppliedDelta:
    """What :meth:`repro.dynamic.DynamicGraph.apply` actually changed.

    The arrays are the *effective* directed updates after symmetrization,
    self-loop removal and dedup against the current edge set — exactly the
    edges whose presence flipped, which is what incremental maintenance
    seeds its repair frontier from.
    """

    #: Directed edges that became present (both directions of each pair).
    insert_src: np.ndarray
    insert_dst: np.ndarray
    #: Directed edges that were removed.
    delete_src: np.ndarray
    delete_dst: np.ndarray
    #: Graph version after this apply.
    version: int
    #: Whether this apply triggered a compaction back into clean CSR.
    compacted: bool = False
    #: Why the compaction fired (``""`` when it did not).
    compact_reason: str = ""
    #: Effective weights of the inserted edges (parallel to ``insert_src``)
    #: on a weighted graph, ``None`` on an unweighted one.  Weighted
    #: maintenance (:class:`repro.dynamic.MaintainedSSSP`) relaxes its
    #: repair seeds from these.
    insert_weights: np.ndarray | None = None

    @property
    def num_inserts(self) -> int:
        """Directed edges that became present."""
        return int(self.insert_src.size)

    @property
    def num_deletes(self) -> int:
        """Directed edges that were removed."""
        return int(self.delete_src.size)


def update_stream(
    edges: EdgeList,
    num_batches: int,
    edges_per_batch: int,
    style: str = "uniform",
    delete_fraction: float = 0.0,
    seed: int = 17,
) -> list[EdgeDelta]:
    """A pinned stream of update batches against ``edges``.

    Each batch carries ``edges_per_batch`` undirected updates, of which a
    ``delete_fraction`` share are deletions of currently-present edges (drawn
    from the evolving edge set, so a later batch can delete an edge an
    earlier batch inserted) and the rest are insertions in the chosen
    ``style``.  Self-loops never appear; duplicate proposals are allowed and
    become no-ops at apply time, exactly like retried client requests.

    Parameters
    ----------
    edges:
        The prepared base graph the stream starts from.
    num_batches:
        Batches to generate.
    edges_per_batch:
        Undirected updates per batch.
    style:
        ``"uniform"`` or ``"pa"`` (preferential attachment).
    delete_fraction:
        Share of each batch that deletes instead of inserts (``0.0``–``1.0``).
    seed:
        Drives every draw through :func:`repro.utils.rng.make_rng`.
    """
    if style not in UPDATE_STYLES:
        raise ValueError(f"unknown update style {style!r}; expected one of {UPDATE_STYLES}")
    if num_batches < 0:
        raise ValueError(f"num_batches must be non-negative, got {num_batches}")
    if edges_per_batch < 1:
        raise ValueError(f"edges_per_batch must be >= 1, got {edges_per_batch}")
    if not 0.0 <= delete_fraction <= 1.0:
        raise ValueError(f"delete_fraction must be in [0, 1], got {delete_fraction}")
    n = edges.num_vertices
    if n < 2:
        raise ValueError("update streams need at least two vertices")

    rng = make_rng(seed)
    # Evolving state: the degree sequence (for preferential attachment) and a
    # canonical undirected edge pool (for deletions).  Both start from the
    # base graph and track the stream's own effect, so the generator stays
    # deterministic without ever touching a live DynamicGraph.  The input is
    # symmetric, so out-degrees (bincount over src alone) already count each
    # undirected edge at both endpoints — matching the +-1 per endpoint the
    # stream's own inserts and deletes apply below.
    degrees = np.bincount(edges.src, minlength=n).astype(np.int64)
    lo = np.minimum(edges.src, edges.dst)
    hi = np.maximum(edges.src, edges.dst)
    pool = np.unique(lo * np.int64(n) + hi)

    deletes_per_batch = int(round(delete_fraction * edges_per_batch))
    inserts_per_batch = edges_per_batch - deletes_per_batch
    deltas: list[EdgeDelta] = []
    for _ in range(num_batches):
        if inserts_per_batch:
            src = rng.integers(0, n, size=inserts_per_batch).astype(np.int64)
            if style == "pa":
                weights = (degrees + 1).astype(np.float64)
                weights /= weights.sum()
                dst = rng.choice(n, size=inserts_per_batch, p=weights).astype(np.int64)
            else:
                dst = rng.integers(0, n, size=inserts_per_batch).astype(np.int64)
            # Deterministically repair self-loops instead of rejection
            # sampling (which would make the draw count data-dependent).
            loops = src == dst
            dst[loops] = (dst[loops] + 1) % n
            np.add.at(degrees, src, 1)
            np.add.at(degrees, dst, 1)
            pool = np.union1d(pool, np.minimum(src, dst) * np.int64(n) + np.maximum(src, dst))
        else:
            src = dst = np.zeros(0, dtype=np.int64)
        if deletes_per_batch and pool.size:
            take = min(deletes_per_batch, int(pool.size))
            picks = rng.choice(pool.size, size=take, replace=False)
            keys = pool[np.sort(picks)]
            del_src = keys // n
            del_dst = keys % n
            pool = np.setdiff1d(pool, keys, assume_unique=True)
            np.subtract.at(degrees, del_src, 1)
            np.subtract.at(degrees, del_dst, 1)
        else:
            del_src = del_dst = np.zeros(0, dtype=np.int64)
        deltas.append(
            EdgeDelta(
                insert_src=src,
                insert_dst=dst,
                delete_src=del_src,
                delete_dst=del_dst,
            )
        )
    return deltas
