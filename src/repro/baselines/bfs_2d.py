"""Distributed BFS over a 2D edge-block partitioning (baseline, §II-B).

The 2D scheme arranges the ``p`` processors in an ``r × c`` grid.  Vertices
are split into ``r`` row blocks and ``c`` column blocks; processor ``(i, j)``
stores the edges from row block ``i`` to column block ``j``.  One BFS
super-step performs:

1. a **column broadcast**: the owner of each frontier vertex sends it to the
   ``r`` processors in the vertex's row block's grid *column*... in practice
   every processor in a grid row needs the frontier restricted to its row
   block, which costs one broadcast over ``log c`` hops per row block;
2. **local expansion** of the stored block;
3. a **row reduction**: partial discovery lists for each column block are
   combined across the ``c`` processors of the grid row that produced them
   (``log r`` hops), after which owners mark the newly visited vertices.

The paper's complaint is that both hops scale with ``√p`` in volume under weak
scaling, and that a backward-pull pass must search for parents independently
in each of the ``√p`` row blocks.  This implementation produces exact
distances and accounts the per-iteration communication volume with the
tree-depth factors of that analysis, so the model-vs-baseline benchmarks can
plot the ``√p`` versus ``log p`` growth directly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.cluster.hardware import HardwareSpec
from repro.cluster.netmodel import NetworkModel
from repro.partition.partition_2d import TwoDPartition

__all__ = ["TwoDBFSResult", "TwoDBFS"]


@dataclass
class TwoDBFSResult:
    """Distances plus communication accounting of a 2D-partitioned BFS run."""

    distances: np.ndarray
    iterations: int
    edges_examined: int
    broadcast_bytes: int
    reduction_bytes: int
    modeled_comm_s: float
    modeled_comp_s: float

    @property
    def total_comm_bytes(self) -> int:
        """Bytes moved by both communication hops."""
        return self.broadcast_bytes + self.reduction_bytes

    @property
    def elapsed_s(self) -> float:
        """Modeled elapsed time (no overlap assumed for the baseline)."""
        return self.modeled_comm_s + self.modeled_comp_s


class TwoDBFS:
    """Level-synchronous BFS over a :class:`TwoDPartition`."""

    def __init__(
        self,
        partition: TwoDPartition,
        hardware: HardwareSpec | None = None,
    ) -> None:
        self.partition = partition
        self.hardware = hardware if hardware is not None else HardwareSpec()
        self.netmodel = NetworkModel(self.hardware)

    def run(self, source: int) -> TwoDBFSResult:
        """Run BFS from ``source`` and return distances plus accounting."""
        part = self.partition
        n = part.num_vertices
        if not 0 <= source < n:
            raise ValueError(f"source {source} out of range [0, {n})")
        rows, cols = part.grid_rows, part.grid_cols
        log_rows = max(1, int(math.ceil(math.log2(rows)))) if rows > 1 else 0
        log_cols = max(1, int(math.ceil(math.log2(cols)))) if cols > 1 else 0

        distances = np.full(n, -1, dtype=np.int64)
        distances[source] = 0
        frontier = np.asarray([source], dtype=np.int64)

        edges_examined = 0
        broadcast_bytes = 0
        reduction_bytes = 0
        comm_s = 0.0
        comp_s = 0.0
        level = 0

        while frontier.size:
            level += 1
            # Hop 1: each frontier vertex is broadcast along its row block's
            # grid row (so every column's block holding its edges sees it).
            # Volume: 4 bytes per frontier vertex per hop of the broadcast tree.
            hop1 = 4 * frontier.size * max(log_cols, 1 if cols > 1 else 0)
            broadcast_bytes += hop1
            comm_s += self.netmodel.global_allreduce_time(4 * frontier.size, cols) if cols > 1 else 0.0

            frontier_row_block = part.row_block_of(frontier)
            frontier_row_local = part.row_local_of(frontier)

            discovered_parts: list[np.ndarray] = []
            per_block_comp = np.zeros((rows, cols), dtype=np.float64)
            partial_counts = 0
            for i in range(rows):
                sel = frontier_row_block == i
                if not np.any(sel):
                    continue
                local_sources = frontier_row_local[sel]
                for j in range(cols):
                    block = part.blocks[i][j]
                    if block.num_edges == 0:
                        continue
                    _, found = block.gather_neighbors(local_sources)
                    found = np.asarray(found, dtype=np.int64)
                    edges_examined += int(found.size)
                    per_block_comp[i, j] = (
                        self.netmodel.iteration_overhead()
                        + self.netmodel.traversal_time(found.size, backward=False)
                    )
                    if found.size:
                        partial_counts += int(found.size)
                        # Convert column-local ids back to global ids.
                        discovered_parts.append(found * cols + j)

            # Hop 2: partial discovery lists are reduced across each grid row
            # (log rows hops), then owners mark them.
            hop2 = 4 * partial_counts * max(log_rows, 1 if rows > 1 else 0)
            reduction_bytes += hop2
            comm_s += self.netmodel.global_allreduce_time(
                4 * max(partial_counts, 1) // max(rows, 1), rows
            ) if rows > 1 else 0.0

            comp_s += float(per_block_comp.max()) if per_block_comp.size else 0.0

            if discovered_parts:
                discovered = np.unique(np.concatenate(discovered_parts))
                fresh = discovered[distances[discovered] == -1]
                distances[fresh] = level
                frontier = fresh
            else:
                frontier = np.zeros(0, dtype=np.int64)

        return TwoDBFSResult(
            distances=distances,
            iterations=level,
            edges_examined=edges_examined,
            broadcast_bytes=broadcast_bytes,
            reduction_bytes=reduction_bytes,
            modeled_comm_s=comm_s,
            modeled_comp_s=comp_s,
        )
