"""Serial oracles for the weighted program zoo.

Small, obviously-correct reference implementations the distributed
programs are tested against:

* :func:`dijkstra_sssp` — binary-heap Dijkstra over non-negative
  float64 weights (exact float arithmetic, same + / min operations as
  the engine's relaxations, so distances match bit-for-bit);
* :func:`pagerank_reference_fixed` — a serial replica of the engine's
  fixed-point power sweep, integer-for-integer identical;
* :func:`pagerank_power` — conventional float64 power iteration, the
  analytic yardstick both integer modes are compared against within a
  tolerance;
* :func:`triangle_count_serial` — per-edge neighbor intersection.
"""

from __future__ import annotations

import heapq

import numpy as np

__all__ = [
    "dijkstra_sssp",
    "pagerank_power",
    "pagerank_reference_fixed",
    "triangle_count_serial",
]


def _adjacency(src, dst, n, weights=None):
    """Dict-of-lists adjacency from a directed edge list."""
    adj: list[list] = [[] for _ in range(n)]
    if weights is None:
        for u, v in zip(src.tolist(), dst.tolist()):
            adj[u].append(v)
    else:
        for u, v, w in zip(src.tolist(), dst.tolist(), weights.tolist()):
            adj[u].append((v, w))
    return adj


def dijkstra_sssp(
    src: np.ndarray,
    dst: np.ndarray,
    weights: np.ndarray,
    num_vertices: int,
    source: int,
) -> np.ndarray:
    """Exact float64 shortest-path distances from ``source``.

    Unreached vertices hold ``inf``.  Distances are produced by the same
    float64 additions the engine's relaxations perform (a shortest path's
    distance is the same left-to-right sum in both), so comparisons
    against engine results can demand bit equality.
    """
    n = int(num_vertices)
    adj = _adjacency(
        np.asarray(src, dtype=np.int64),
        np.asarray(dst, dtype=np.int64),
        n,
        np.asarray(weights, dtype=np.float64),
    )
    dist = np.full(n, np.inf, dtype=np.float64)
    dist[source] = 0.0
    heap = [(0.0, int(source))]
    done = np.zeros(n, dtype=bool)
    while heap:
        d, u = heapq.heappop(heap)
        if done[u]:
            continue
        done[u] = True
        for v, w in adj[u]:
            nd = d + w
            if nd < dist[v]:
                dist[v] = nd
                heapq.heappush(heap, (nd, v))
    return dist


def _out_degrees(src: np.ndarray, n: int) -> np.ndarray:
    return np.bincount(np.asarray(src, dtype=np.int64), minlength=n).astype(np.int64)


def pagerank_power(
    src: np.ndarray,
    dst: np.ndarray,
    num_vertices: int,
    damping: float = 0.85,
    iterations: int = 20,
) -> np.ndarray:
    """Conventional float64 PageRank power iteration (dangling-aware)."""
    n = int(num_vertices)
    src = np.asarray(src, dtype=np.int64)
    dst = np.asarray(dst, dtype=np.int64)
    outdeg = _out_degrees(src, n)
    r = np.full(n, 1.0 / n, dtype=np.float64)
    teleport = (1.0 - damping) / n
    for _ in range(iterations):
        contrib = np.zeros(n, dtype=np.float64)
        nz = outdeg > 0
        contrib[nz] = damping * r[nz] / outdeg[nz]
        dangling = damping * r[~nz].sum() / n
        recv = np.zeros(n, dtype=np.float64)
        np.add.at(recv, dst, contrib[src])
        r = teleport + recv + dangling
    return r


def pagerank_reference_fixed(
    src: np.ndarray,
    dst: np.ndarray,
    num_vertices: int,
    damping: float = 0.85,
    iterations: int = 20,
) -> np.ndarray:
    """Serial replica of the engine's fixed-point power sweep.

    Performs the identical integer arithmetic (same scale, same damping
    rational, same truncating divisions) over the plain edge list, so
    the result must equal the distributed ``PageRank(mode="fixed")``
    ranks integer-for-integer.
    """
    from repro.weighted.pagerank import DAMP_DEN, SCALE, damped

    n = int(num_vertices)
    src = np.asarray(src, dtype=np.int64)
    dst = np.asarray(dst, dtype=np.int64)
    damp_num = int(round(float(damping) * DAMP_DEN))
    outdeg = _out_degrees(src, n)
    nz = outdeg > 0
    teleport = np.int64((SCALE - int(damped(SCALE, damp_num))) // n)
    r = np.full(n, SCALE // n, dtype=np.int64)
    for _ in range(int(iterations)):
        dr = damped(r, damp_num)
        contrib = np.zeros(n, dtype=np.int64)
        contrib[nz] = dr[nz] // outdeg[nz]
        dangling = int(dr[~nz].sum())
        recv = np.zeros(n, dtype=np.int64)
        np.add.at(recv, dst, contrib[src])
        r = teleport + recv + np.int64(dangling // n)
    return r


def triangle_count_serial(
    src: np.ndarray, dst: np.ndarray, num_vertices: int
) -> tuple[int, np.ndarray]:
    """Exact ``(total, per_vertex)`` triangle counts of the undirected graph.

    Uses sorted-set neighbor intersections per undirected edge — slow but
    transparently correct.
    """
    n = int(num_vertices)
    src = np.asarray(src, dtype=np.int64)
    dst = np.asarray(dst, dtype=np.int64)
    lo = np.minimum(src, dst)
    hi = np.maximum(src, dst)
    keep = lo != hi
    packed = np.unique(lo[keep] * np.int64(n) + hi[keep])
    lo = packed // n
    hi = packed - lo * n
    neighbors: list[set] = [set() for _ in range(n)]
    for u, v in zip(lo.tolist(), hi.tolist()):
        neighbors[u].add(v)
        neighbors[v].add(u)
    per_vertex = np.zeros(n, dtype=np.int64)
    total = 0
    for u, v in zip(lo.tolist(), hi.tolist()):
        common = neighbors[u] & neighbors[v]
        for w in common:
            # Count each triangle once: at its lexicographically largest edge.
            if w < u:
                total += 1
                per_vertex[u] += 1
                per_vertex[v] += 1
                per_vertex[w] += 1
    return total, per_vertex
