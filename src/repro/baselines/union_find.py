"""Serial connected components via union-find (disjoint-set forest).

The correctness oracle for the distributed
:class:`repro.core.programs.ConnectedComponents` program: a textbook
union-find with path compression, vectorized over the edge list in rounds so
large graphs stay cheap in pure NumPy.  Labels are canonicalized to the
*smallest vertex id in each component*, matching the fixpoint of min-label
propagation, so the two outputs are comparable with ``array_equal``.
"""

from __future__ import annotations

import numpy as np

from repro.graph.edgelist import EdgeList

__all__ = ["union_find_components", "serial_components"]


def union_find_components(num_vertices: int, src: np.ndarray, dst: np.ndarray) -> np.ndarray:
    """Root array of the disjoint-set forest after uniting every edge.

    Uses pointer-jumping rounds (a vectorized equivalent of path
    compression): repeatedly hook each vertex's root to the smaller of the
    two endpoint roots until no edge spans two trees.
    """
    parent = np.arange(num_vertices, dtype=np.int64)
    src = np.asarray(src, dtype=np.int64).ravel()
    dst = np.asarray(dst, dtype=np.int64).ravel()
    while True:
        # Full path compression: flatten the forest to depth one.
        while True:
            grand = parent[parent]
            if np.array_equal(grand, parent):
                break
            parent = grand
        ru, rv = parent[src], parent[dst]
        differs = ru != rv
        if not np.any(differs):
            return parent
        lo = np.minimum(ru[differs], rv[differs])
        hi = np.maximum(ru[differs], rv[differs])
        # Hook the larger root to the smaller; np.minimum.at resolves
        # conflicting hooks of one round deterministically.
        np.minimum.at(parent, hi, lo)


def serial_components(edges: EdgeList) -> np.ndarray:
    """Per-vertex component labels: the smallest vertex id in the component.

    Isolated vertices label themselves, matching the distributed program.
    """
    roots = union_find_components(edges.num_vertices, edges.src, edges.dst)
    # Canonicalize: every vertex gets the minimum vertex id of its root's
    # tree.  After full compression `roots` is already depth-one with the
    # smallest root winning each hook, but hooks of later rounds can leave a
    # root that is not the component minimum; one grouped min fixes that.
    labels = np.full(edges.num_vertices, np.iinfo(np.int64).max, dtype=np.int64)
    np.minimum.at(labels, roots, np.arange(edges.num_vertices, dtype=np.int64))
    return labels[roots]
