"""Distributed BFS over a conventional 1D partitioning (baseline, §II-B).

Every GPU owns a hash-interleaved slice of the vertices and all their outgoing
edges.  A super-step expands the local frontier and sends every discovered
neighbour to its owner as a 64-bit global id — there is no degree separation,
so *all* cross-GPU discoveries travel point-to-point, and a direction-
optimized variant would have to broadcast the frontier to every peer (the
paper's ``8m`` bytes argument).  This implementation:

* produces exact hop distances (validated against the serial oracle), and
* accounts the communication volume and modeled time of the plain forward
  variant, plus the analytic volume a DO variant would have needed, so the
  comparison benchmarks can show why the paper rejects this design.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.hardware import HardwareSpec
from repro.cluster.netmodel import NetworkModel
from repro.cluster.topology import ClusterTopology
from repro.partition.partition_1d import OneDPartition

__all__ = ["OneDBFSResult", "OneDBFS"]


@dataclass
class OneDBFSResult:
    """Distances plus communication accounting of a 1D-partitioned BFS run."""

    distances: np.ndarray
    iterations: int
    edges_examined: int
    remote_bytes: int
    modeled_comm_s: float
    modeled_comp_s: float

    @property
    def elapsed_s(self) -> float:
        """Modeled elapsed time (no overlap assumed for the baseline)."""
        return self.modeled_comm_s + self.modeled_comp_s


class OneDBFS:
    """Forward-push BFS over a :class:`OneDPartition`."""

    def __init__(
        self,
        partition: OneDPartition,
        hardware: HardwareSpec | None = None,
    ) -> None:
        self.partition = partition
        self.hardware = hardware if hardware is not None else HardwareSpec()
        self.netmodel = NetworkModel(self.hardware)
        self.topology = ClusterTopology(partition.layout)

    def run(self, source: int) -> OneDBFSResult:
        """Run BFS from ``source`` and return distances plus accounting."""
        part = self.partition
        layout = part.layout
        p = layout.num_gpus
        n = part.num_vertices
        if not 0 <= source < n:
            raise ValueError(f"source {source} out of range [0, {n})")

        # Per-GPU levels over local slots.
        levels = [
            np.full(layout.num_local_vertices(g, n), -1, dtype=np.int64) for g in range(p)
        ]
        frontiers = [np.zeros(0, dtype=np.int64) for _ in range(p)]
        owner0 = int(layout.flat_gpu_of(source))
        slot0 = int(layout.local_index_of(source))
        levels[owner0][slot0] = 0
        frontiers[owner0] = np.asarray([slot0], dtype=np.int64)

        edges_examined = 0
        remote_bytes = 0
        comm_s = 0.0
        comp_s = 0.0
        level = 0

        while any(f.size for f in frontiers):
            level += 1
            outboxes: list[np.ndarray] = []
            per_gpu_comp = np.zeros(p, dtype=np.float64)
            for g in range(p):
                frontier = frontiers[g]
                if frontier.size == 0:
                    outboxes.append(np.zeros(0, dtype=np.int64))
                    per_gpu_comp[g] = self.netmodel.iteration_overhead()
                    continue
                _, neighbors = part.adjacency[g].gather_neighbors(frontier)
                neighbors = np.asarray(neighbors, dtype=np.int64)
                edges_examined += int(neighbors.size)
                per_gpu_comp[g] = (
                    self.netmodel.iteration_overhead()
                    + self.netmodel.traversal_time(neighbors.size, backward=False)
                    + self.netmodel.filter_time(neighbors.size)
                )
                outboxes.append(neighbors)

            # Exchange: every discovered vertex travels to its owner as a
            # 64-bit id (no degree separation, no 32-bit conversion).
            per_gpu_send = np.zeros(p, dtype=np.float64)
            inboxes: list[list[np.ndarray]] = [[] for _ in range(p)]
            for g in range(p):
                out = outboxes[g]
                if out.size == 0:
                    continue
                owners = layout.flat_gpu_of(out)
                for dst in range(p):
                    chunk = out[owners == dst]
                    if chunk.size == 0:
                        continue
                    if dst != g:
                        nbytes = chunk.size * 8
                        remote_bytes += nbytes
                        per_gpu_send[g] += self.netmodel.p2p_time(
                            nbytes, bool(self.topology.same_rank(g, dst))
                        )
                    inboxes[dst].append(chunk)

            for g in range(p):
                if inboxes[g]:
                    received = np.unique(np.concatenate(inboxes[g]))
                    slots = layout.local_index_of(received)
                    fresh = slots[levels[g][slots] == -1]
                    levels[g][fresh] = level
                    frontiers[g] = fresh
                else:
                    frontiers[g] = np.zeros(0, dtype=np.int64)

            comp_s += float(per_gpu_comp.max())
            comm_s += float(per_gpu_send.max()) if p else 0.0

        distances = np.full(n, -1, dtype=np.int64)
        for g in range(p):
            owned = layout.owned_vertices(g, n)
            visited = levels[g] != -1
            distances[owned[visited]] = levels[g][visited]
        return OneDBFSResult(
            distances=distances,
            iterations=level,
            edges_examined=edges_examined,
            remote_bytes=remote_bytes,
            modeled_comm_s=comm_s,
            modeled_comp_s=comp_s,
        )

    def dobfs_broadcast_bytes(self) -> int:
        """Analytic volume a direction-optimized 1D BFS would communicate.

        The paper's §II-B: backward-pull on a 1D partition requires
        broadcasting newly visited vertices to every peer holding their
        neighbours, which in practice means ``8m`` bytes over a full run.
        """
        return 8 * self.partition.num_directed_edges
