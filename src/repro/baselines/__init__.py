"""Baseline BFS implementations the paper compares against or builds on.

``serial_bfs``
    Plain level-synchronous top-down BFS over a single CSR — the reference
    oracle for correctness tests and the "conventional" workload baseline.
``serial_dobfs``
    Single-processor direction-optimizing BFS (Beamer, Asanović, Patterson),
    used to quantify the workload savings of DO that the distributed engine
    must preserve.
``bfs_1d``
    Distributed BFS over a conventional 1D partitioning: every frontier vertex
    broadcast of its neighbours crosses the network; this is the scheme whose
    communication the paper's §II-B analysis shows does not scale for DOBFS.
``bfs_2d``
    Distributed BFS over a 2D (edge-block) partitioning with the two-hop
    row-reduction / column-broadcast communication pattern of Graph500 CPU
    entries; its ``√p`` communication growth is the main analytic comparison
    target of the paper's communication model.
``union_find``
    Serial connected components (disjoint-set forest) — the oracle for the
    distributed min-label-propagation program.
``weighted``
    Serial oracles of the weighted program zoo: heap Dijkstra for SSSP,
    float and exact-integer PageRank references, and a transparent
    neighbor-intersection triangle counter.
"""

from repro.baselines.bfs_1d import OneDBFS
from repro.baselines.bfs_2d import TwoDBFS
from repro.baselines.serial_bfs import serial_bfs, serial_bfs_edge_workload
from repro.baselines.serial_dobfs import serial_dobfs
from repro.baselines.union_find import serial_components, union_find_components
from repro.baselines.weighted import (
    dijkstra_sssp,
    pagerank_power,
    pagerank_reference_fixed,
    triangle_count_serial,
)

__all__ = [
    "serial_bfs",
    "serial_bfs_edge_workload",
    "serial_dobfs",
    "serial_components",
    "union_find_components",
    "OneDBFS",
    "TwoDBFS",
    "dijkstra_sssp",
    "pagerank_power",
    "pagerank_reference_fixed",
    "triangle_count_serial",
]
