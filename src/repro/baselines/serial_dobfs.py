"""Serial direction-optimizing BFS (Beamer, Asanović, Patterson, SC'12).

The single-processor variant of the optimization the whole paper is about:
when the frontier becomes large relative to the unvisited set, switch from
top-down pushes to bottom-up pulls where every unvisited vertex scans its
parent list only until it finds one in the frontier.

The implementation mirrors the hybrid heuristic of the original paper with the
two classic parameters ``alpha`` (top-down → bottom-up when the frontier's
edge count exceeds the unexplored edge count divided by ``alpha``) and ``beta``
(bottom-up → top-down when the frontier shrinks below ``n / beta``), and it
reports the exact number of edges examined so the workload saving of DO can be
asserted in tests and quantified in benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.kernels import backward_visit, forward_visit
from repro.graph.csr import CSRGraph

__all__ = ["DOBFSResult", "serial_dobfs"]


@dataclass
class DOBFSResult:
    """Distances and workload counters of a serial DOBFS run."""

    distances: np.ndarray
    edges_examined: int
    iterations: int
    bottom_up_iterations: int

    @property
    def depth(self) -> int:
        """Largest hop distance reached."""
        reached = self.distances[self.distances >= 0]
        return int(reached.max()) if reached.size else 0


def serial_dobfs(
    csr: CSRGraph,
    source: int,
    alpha: float = 15.0,
    beta: float = 18.0,
) -> DOBFSResult:
    """Direction-optimizing BFS over a symmetric square CSR.

    Parameters
    ----------
    csr:
        Adjacency; must be square and should be symmetric for the bottom-up
        passes to be meaningful (the same requirement the paper places on its
        input graphs).
    source:
        Start vertex.
    alpha, beta:
        The switching parameters from Beamer et al.  ``alpha`` controls the
        top-down → bottom-up switch, ``beta`` the switch back.
    """
    if csr.num_rows != csr.num_cols:
        raise ValueError("serial_dobfs requires a square adjacency")
    if alpha <= 0 or beta <= 0:
        raise ValueError("alpha and beta must be positive")
    n = csr.num_rows
    if not 0 <= source < n:
        raise ValueError(f"source {source} out of range [0, {n})")

    degrees = csr.out_degrees()
    distances = np.full(n, -1, dtype=np.int64)
    distances[source] = 0
    frontier = np.asarray([source], dtype=np.int64)
    edges_examined = 0
    unexplored_edges = int(degrees.sum()) - int(degrees[source])
    level = 0
    bottom_up = False
    bottom_up_iterations = 0

    while frontier.size:
        level += 1
        frontier_edges = int(degrees[frontier].sum())
        if not bottom_up and frontier_edges > unexplored_edges / alpha:
            bottom_up = True
        elif bottom_up and frontier.size < n / beta:
            bottom_up = False

        if bottom_up:
            bottom_up_iterations += 1
            unvisited = np.flatnonzero(distances == -1)
            in_frontier = np.zeros(n, dtype=bool)
            in_frontier[frontier] = True
            out = backward_visit(csr, unvisited, in_frontier)
            fresh = out.discovered
        else:
            out = forward_visit(csr, frontier)
            neighbors = np.unique(out.discovered)
            fresh = neighbors[distances[neighbors] == -1]
        edges_examined += out.edges_examined
        distances[fresh] = level
        unexplored_edges -= int(degrees[fresh].sum())
        frontier = fresh

    return DOBFSResult(
        distances=distances,
        edges_examined=edges_examined,
        iterations=level,
        bottom_up_iterations=bottom_up_iterations,
    )
