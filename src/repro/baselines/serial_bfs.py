"""Serial level-synchronous (top-down) BFS.

This is the correctness oracle for every other traversal in the library: it is
a direct, obviously-correct frontier expansion over a single CSR.  It also
reports the classic top-down workload (every edge out of every reached vertex
is examined exactly once), which is the ``O(m)`` baseline that
direction-optimizing BFS improves on.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph
from repro.graph.edgelist import EdgeList

__all__ = ["serial_bfs", "serial_bfs_edge_workload", "bfs_from_edgelist"]


def serial_bfs(csr: CSRGraph, source: int) -> np.ndarray:
    """Hop distances from ``source`` over a square CSR (``-1`` = unreachable)."""
    if csr.num_rows != csr.num_cols:
        raise ValueError("serial_bfs requires a square adjacency (num_rows == num_cols)")
    n = csr.num_rows
    if not 0 <= source < n:
        raise ValueError(f"source {source} out of range [0, {n})")
    distances = np.full(n, -1, dtype=np.int64)
    distances[source] = 0
    frontier = np.asarray([source], dtype=np.int64)
    level = 0
    while frontier.size:
        level += 1
        _, neighbors = csr.gather_neighbors(frontier)
        neighbors = np.asarray(neighbors, dtype=np.int64)
        if neighbors.size == 0:
            break
        neighbors = np.unique(neighbors)
        fresh = neighbors[distances[neighbors] == -1]
        distances[fresh] = level
        frontier = fresh
    return distances


def serial_bfs_edge_workload(csr: CSRGraph, source: int) -> tuple[np.ndarray, int]:
    """Distances plus the number of edges a top-down traversal examines.

    The workload equals the sum of out-degrees of all reached vertices, which
    is what a forward-push implementation must touch.
    """
    distances = serial_bfs(csr, source)
    reached = np.flatnonzero(distances >= 0)
    workload = csr.frontier_workload(reached)
    return distances, int(workload)


def bfs_from_edgelist(edges: EdgeList, source: int) -> np.ndarray:
    """Convenience wrapper: build a CSR from an edge list and run BFS."""
    csr = CSRGraph.from_edgelist(edges)
    return serial_bfs(csr, source)
