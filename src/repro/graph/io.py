"""Edge-list persistence.

The paper's implementation is "a component of a complex workflow with many
components that use standard formats for passing data between them"; we keep
the same spirit by supporting two simple interchange formats:

* a **binary** ``.npz`` container (fast, exact, compressed), and
* a **text** format with one ``src dst`` pair per line (interoperable with
  practically every graph tool, including the SNAP-format distribution of the
  real Friendster dataset).
"""

from __future__ import annotations

import warnings
from pathlib import Path

import numpy as np

from repro.graph.edgelist import EdgeList

__all__ = ["save_npz", "load_npz", "save_text", "load_text"]


def save_npz(path: str | Path, edges: EdgeList) -> None:
    """Save an edge list to a compressed ``.npz`` file."""
    path = Path(path)
    np.savez_compressed(
        path, src=edges.src, dst=edges.dst, num_vertices=np.int64(edges.num_vertices)
    )


def load_npz(path: str | Path) -> EdgeList:
    """Load an edge list previously written by :func:`save_npz`."""
    path = Path(path)
    with np.load(path) as data:
        missing = {"src", "dst", "num_vertices"} - set(data.files)
        if missing:
            raise ValueError(f"{path} is not an edge-list archive (missing {sorted(missing)})")
        return EdgeList(data["src"], data["dst"], int(data["num_vertices"]))


def save_text(path: str | Path, edges: EdgeList, header: bool = True) -> None:
    """Save an edge list as whitespace-separated ``src dst`` lines."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as fh:
        if header:
            fh.write(f"# vertices {edges.num_vertices} edges {edges.num_edges}\n")
        np.savetxt(fh, np.column_stack([edges.src, edges.dst]), fmt="%d")


def load_text(path: str | Path, num_vertices: int | None = None) -> EdgeList:
    """Load a text edge list.

    Parameters
    ----------
    path:
        File with one ``src dst`` pair per line; ``#`` lines are comments.
        If the header written by :func:`save_text` is present, the vertex
        count is taken from it.
    num_vertices:
        Override / supply the vertex count when the file has no header.
    """
    path = Path(path)
    n_from_header: int | None = None
    with path.open("r", encoding="utf-8") as fh:
        first = fh.readline()
        if first.startswith("#") and "vertices" in first:
            try:
                n_from_header = int(first.split()[2])
            except (IndexError, ValueError):
                n_from_header = None
    with warnings.catch_warnings():
        # An empty edge file is legitimate (a graph of isolated vertices);
        # suppress NumPy's "no data" warning for that case.
        warnings.simplefilter("ignore", UserWarning)
        data = np.loadtxt(path, comments="#", dtype=np.int64, ndmin=2)
    if data.size == 0:
        src = np.zeros(0, dtype=np.int64)
        dst = np.zeros(0, dtype=np.int64)
    else:
        src, dst = data[:, 0], data[:, 1]
    n = num_vertices if num_vertices is not None else n_from_header
    if n is None:
        n = int(max(src.max(initial=-1), dst.max(initial=-1)) + 1) if src.size else 0
    return EdgeList(src, dst, n)
