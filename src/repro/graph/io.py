"""Edge-list persistence.

The paper's implementation is "a component of a complex workflow with many
components that use standard formats for passing data between them"; we keep
the same spirit by supporting two simple interchange formats:

* a **binary** ``.npz`` container (fast, exact, compressed),
* a **text** format with one ``src dst`` pair per line (interoperable with
  practically every graph tool, including the SNAP-format distribution of the
  real Friendster dataset), and
* a **raw binary** single-file format (fixed header + interleaved little-endian
  ``int64`` pairs) that can be read back in bounded chunks, which is what the
  out-of-core build path (:mod:`repro.storage`) streams from.
"""

from __future__ import annotations

import struct
import warnings
from pathlib import Path
from typing import Iterator

import numpy as np

from repro.graph.edgelist import EdgeList

__all__ = [
    "save_npz",
    "load_npz",
    "save_text",
    "load_text",
    "save_binary",
    "load_binary",
    "iter_binary",
    "binary_edge_count",
    "binary_is_weighted",
]

#: Magic + version for the raw binary edge format ("repro edge list v1"); v2
#: appends a little-endian float64 weight to every record.
_BINARY_MAGIC = b"REPROEL1"
_BINARY_MAGIC_V2 = b"REPROEL2"
_BINARY_HEADER = struct.Struct("<8sqq")  # magic, num_vertices, num_edges
_WEIGHTED_RECORD = np.dtype([("src", "<i8"), ("dst", "<i8"), ("w", "<f8")])


def save_npz(path: str | Path, edges: EdgeList) -> None:
    """Save an edge list to a compressed ``.npz`` file."""
    path = Path(path)
    arrays = dict(
        src=edges.src, dst=edges.dst, num_vertices=np.int64(edges.num_vertices)
    )
    if edges.weights is not None:
        arrays["weights"] = edges.weights
    np.savez_compressed(path, **arrays)


def load_npz(path: str | Path) -> EdgeList:
    """Load an edge list previously written by :func:`save_npz`.

    Weighted archives (a ``weights`` array parallel to ``src``/``dst``) load
    back weighted; the weights are re-validated on load, so a corrupted or
    hand-edited archive with negative or non-finite weights is rejected.
    """
    path = Path(path)
    with np.load(path) as data:
        missing = {"src", "dst", "num_vertices"} - set(data.files)
        if missing:
            raise ValueError(f"{path} is not an edge-list archive (missing {sorted(missing)})")
        weights = data["weights"] if "weights" in data.files else None
        return EdgeList(data["src"], data["dst"], int(data["num_vertices"]), weights=weights)


def save_text(path: str | Path, edges: EdgeList, header: bool = True) -> None:
    """Save an edge list as whitespace-separated ``src dst`` lines."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as fh:
        if header:
            fh.write(f"# vertices {edges.num_vertices} edges {edges.num_edges}\n")
        np.savetxt(fh, np.column_stack([edges.src, edges.dst]), fmt="%d")


def load_text(path: str | Path, num_vertices: int | None = None) -> EdgeList:
    """Load a text edge list.

    Parameters
    ----------
    path:
        File with one ``src dst`` pair per line; ``#`` lines are comments.
        If the header written by :func:`save_text` is present, the vertex
        count is taken from it.
    num_vertices:
        Override / supply the vertex count when the file has no header.
    """
    path = Path(path)
    n_from_header: int | None = None
    with path.open("r", encoding="utf-8") as fh:
        first = fh.readline()
        if first.startswith("#") and "vertices" in first:
            try:
                n_from_header = int(first.split()[2])
            except (IndexError, ValueError):
                n_from_header = None
    with warnings.catch_warnings():
        # An empty edge file is legitimate (a graph of isolated vertices);
        # suppress NumPy's "no data" warning for that case.
        warnings.simplefilter("ignore", UserWarning)
        data = np.loadtxt(path, comments="#", dtype=np.int64, ndmin=2)
    if data.size == 0:
        src = np.zeros(0, dtype=np.int64)
        dst = np.zeros(0, dtype=np.int64)
    else:
        src, dst = data[:, 0], data[:, 1]
    n = num_vertices if num_vertices is not None else n_from_header
    if n is None:
        n = int(max(src.max(initial=-1), dst.max(initial=-1)) + 1) if src.size else 0
    return EdgeList(src, dst, n)


def save_binary(path: str | Path, edges: EdgeList) -> None:
    """Save an edge list in the raw binary single-file format.

    Layout: an ``REPROEL1`` magic header carrying ``num_vertices`` and
    ``num_edges`` (little-endian ``int64``), followed by the edges as
    interleaved ``(src, dst)`` little-endian ``int64`` pairs.  Weighted edge
    lists are written with the ``REPROEL2`` magic and a third little-endian
    ``float64`` weight per record.  Unlike :func:`save_npz` the payload is
    uncompressed and seekable, so :func:`iter_binary` can stream it back with
    peak memory bounded by the chunk size.
    """
    path = Path(path)
    if edges.weights is not None:
        records = np.empty(edges.num_edges, dtype=_WEIGHTED_RECORD)
        records["src"] = edges.src
        records["dst"] = edges.dst
        records["w"] = edges.weights
        magic = _BINARY_MAGIC_V2
        payload = records.tobytes()
    else:
        pairs = np.empty((edges.num_edges, 2), dtype="<i8")
        pairs[:, 0] = edges.src
        pairs[:, 1] = edges.dst
        magic = _BINARY_MAGIC
        payload = pairs.tobytes()
    with path.open("wb") as fh:
        fh.write(_BINARY_HEADER.pack(magic, edges.num_vertices, edges.num_edges))
        fh.write(payload)


def _read_binary_header(fh, path: Path) -> tuple[int, int, bool]:
    raw = fh.read(_BINARY_HEADER.size)
    if len(raw) != _BINARY_HEADER.size:
        raise ValueError(f"{path} is too short to be a binary edge list")
    magic, num_vertices, num_edges = _BINARY_HEADER.unpack(raw)
    if magic not in (_BINARY_MAGIC, _BINARY_MAGIC_V2):
        raise ValueError(f"{path} is not a binary edge list (bad magic {magic!r})")
    if num_vertices < 0 or num_edges < 0:
        raise ValueError(f"{path} header is corrupt: {num_vertices=} {num_edges=}")
    return num_vertices, num_edges, magic == _BINARY_MAGIC_V2


def load_binary(path: str | Path) -> EdgeList:
    """Load an edge list previously written by :func:`save_binary`.

    ``REPROEL2`` (weighted) files load back weighted, with the weights
    re-validated — negative or non-finite values in the payload are rejected
    with a clear error rather than poisoning downstream programs.
    """
    path = Path(path)
    with path.open("rb") as fh:
        num_vertices, num_edges, weighted = _read_binary_header(fh, path)
        if weighted:
            records = np.fromfile(fh, dtype=_WEIGHTED_RECORD, count=num_edges)
            if records.size != num_edges:
                raise ValueError(
                    f"{path} is truncated: header says {num_edges} edges, "
                    f"payload holds {records.size}"
                )
            return EdgeList(
                np.ascontiguousarray(records["src"]),
                np.ascontiguousarray(records["dst"]),
                num_vertices,
                weights=np.ascontiguousarray(records["w"]),
            )
        flat = np.fromfile(fh, dtype="<i8", count=2 * num_edges)
    if flat.size != 2 * num_edges:
        raise ValueError(
            f"{path} is truncated: header says {num_edges} edges, "
            f"payload holds {flat.size / 2:g}"
        )
    pairs = flat.reshape(-1, 2)
    return EdgeList(
        np.ascontiguousarray(pairs[:, 0]),
        np.ascontiguousarray(pairs[:, 1]),
        num_vertices,
    )


def iter_binary(
    path: str | Path, chunk_edges: int = 1 << 20
) -> Iterator[tuple[np.ndarray, ...]]:
    """Stream a :func:`save_binary` file back as bounded ``(src, dst)`` chunks.

    Peak memory is ``O(chunk_edges)`` regardless of file size; the chunks plug
    directly into :func:`repro.storage.extsort.external_build`.  ``REPROEL2``
    files yield ``(src, dst, weights)`` triples instead of pairs.
    """
    path = Path(path)
    if chunk_edges < 1:
        raise ValueError("chunk_edges must be >= 1")
    with path.open("rb") as fh:
        _, num_edges, weighted = _read_binary_header(fh, path)
        remaining = num_edges
        while remaining > 0:
            count = min(chunk_edges, remaining)
            if weighted:
                records = np.fromfile(fh, dtype=_WEIGHTED_RECORD, count=count)
                if records.size != count:
                    raise ValueError(f"{path} is truncated mid-stream")
                yield (
                    np.ascontiguousarray(records["src"]),
                    np.ascontiguousarray(records["dst"]),
                    np.ascontiguousarray(records["w"]),
                )
            else:
                flat = np.fromfile(fh, dtype="<i8", count=2 * count)
                if flat.size != 2 * count:
                    raise ValueError(f"{path} is truncated mid-stream")
                pairs = flat.reshape(-1, 2)
                yield (
                    np.ascontiguousarray(pairs[:, 0]),
                    np.ascontiguousarray(pairs[:, 1]),
                )
            remaining -= count


def binary_edge_count(path: str | Path) -> tuple[int, int]:
    """Return ``(num_vertices, num_edges)`` from a binary edge list header."""
    path = Path(path)
    with path.open("rb") as fh:
        num_vertices, num_edges, _ = _read_binary_header(fh, path)
        return num_vertices, num_edges


def binary_is_weighted(path: str | Path) -> bool:
    """``True`` when a binary edge list carries per-edge weights (REPROEL2)."""
    path = Path(path)
    with path.open("rb") as fh:
        return _read_binary_header(fh, path)[2]
