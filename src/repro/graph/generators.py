"""Synthetic graph generators beyond RMAT.

The paper also evaluates on two real-world graphs that are not redistributable
at laptop scale:

* **Friendster** (§VI-D): 134 M vertices after preparation, about half of them
  isolated, 5.17 B edges — a social network with a heavy-tailed degree
  distribution but no single dominating hub.
* **WDC 2012 hyperlink graph** (§VI-D): 4.29 B vertices (402 M isolated),
  224 B edges — a web graph whose BFS exhibits *long-tail* behaviour
  (~330 iterations on average), which flips the BFS-vs-DOBFS comparison.

Since those datasets cannot be shipped, :func:`friendster_like` and
:func:`wdc_like` generate scale-free graphs with the matching qualitative
characteristics (skewed degrees + isolated vertices for Friendster; skewed
degrees + a long chain-like component for WDC) so that the corresponding
experiments (Figures 12 and 13, and the long-tail discussion) exercise the
same code paths.

The module also contains small deterministic generators (paths, stars, grids,
cliques, bipartite graphs) used throughout the unit and property tests.
"""

from __future__ import annotations

import numpy as np

from repro.graph.edgelist import EdgeList
from repro.utils.rng import make_rng

__all__ = [
    "friendster_like",
    "wdc_like",
    "wdc_like_edge_chunks",
    "uniform_random_graph",
    "power_law_configuration",
    "random_bipartite",
    "path_edges",
    "cycle_edges",
    "star_edges",
    "grid_edges",
    "clique_edges",
    "binary_tree_edges",
]


# --------------------------------------------------------------------------- #
# Scale-free generators (dataset substitutes)
# --------------------------------------------------------------------------- #
def power_law_configuration(
    num_vertices: int,
    mean_degree: float,
    exponent: float = 2.3,
    max_degree: int | None = None,
    rng: np.random.Generator | int | None = None,
) -> EdgeList:
    """Directed configuration-model graph with a power-law out-degree sequence.

    Degrees are drawn from a discrete Pareto-like distribution with the given
    exponent, rescaled to the requested mean, and each out-stub is connected
    to a uniformly random destination.  The result has the hub-and-tail
    structure degree separation is designed for.

    Parameters
    ----------
    num_vertices:
        Number of vertices.
    mean_degree:
        Target mean out-degree.
    exponent:
        Power-law exponent (2.1–2.5 covers most social/web graphs).
    max_degree:
        Optional hub cap (defaults to ``num_vertices - 1``).
    rng:
        Seed or generator.
    """
    if num_vertices <= 1:
        raise ValueError("power_law_configuration needs at least 2 vertices")
    if mean_degree <= 0:
        raise ValueError("mean_degree must be positive")
    gen = make_rng(rng)
    degrees = _power_law_degrees(num_vertices, mean_degree, exponent, max_degree, gen)
    total = int(degrees.sum())
    src = np.repeat(np.arange(num_vertices, dtype=np.int64), degrees)
    dst = gen.integers(0, num_vertices, size=total).astype(np.int64)
    return EdgeList(src, dst, num_vertices)


def _power_law_degrees(
    num_vertices: int,
    mean_degree: float,
    exponent: float,
    max_degree: int | None,
    gen: np.random.Generator,
) -> np.ndarray:
    """The power-law out-degree sequence behind :func:`power_law_configuration`."""
    cap = (num_vertices - 1) if max_degree is None else int(max_degree)
    # Pareto draws, shifted to >= 1, then scaled to hit the target mean.
    raw = 1.0 + gen.pareto(exponent - 1.0, size=num_vertices)
    raw = np.minimum(raw, cap)
    scale = mean_degree / raw.mean()
    degrees = np.maximum(0, np.round(raw * scale)).astype(np.int64)
    degrees = np.minimum(degrees, cap)
    if int(degrees.sum()) == 0:
        degrees[0] = 1
    return degrees


def friendster_like(
    num_vertices: int = 1 << 18,
    mean_degree: float = 24.0,
    isolated_fraction: float = 0.5,
    exponent: float = 2.4,
    rng: np.random.Generator | int | None = None,
    weights_seed: int | None = None,
) -> EdgeList:
    """Synthetic substitute for the Friendster social graph.

    Matches the qualitative properties the paper relies on: a heavy-tailed
    degree distribution, a mean degree in the tens, and roughly half of the
    vertex universe isolated (the paper reports "134 million vertices, about
    half of which are isolated ones").  The returned edge list is directed;
    callers prepare it with :meth:`EdgeList.prepared` exactly like the paper
    prepares the real dataset (vertex randomisation + edge doubling).
    """
    if not 0.0 <= isolated_fraction < 1.0:
        raise ValueError("isolated_fraction must be in [0, 1)")
    gen = make_rng(rng)
    active = max(2, int(round(num_vertices * (1.0 - isolated_fraction))))
    core = power_law_configuration(
        active, mean_degree=mean_degree, exponent=exponent, rng=gen
    )
    # Scatter the active vertices across the full universe so isolated ids are
    # interleaved, as they are after the paper's hash permutation.
    placement = gen.permutation(num_vertices)[:active].astype(np.int64)
    src = placement[core.src]
    dst = placement[core.dst]
    w = None
    if weights_seed is not None:
        from repro.graph.weights import edge_keyed_weights

        w = edge_keyed_weights(src, dst, num_vertices, seed=weights_seed)
    return EdgeList(src, dst, num_vertices, weights=w)


def wdc_like(
    num_vertices: int = 1 << 18,
    mean_degree: float = 8.0,
    isolated_fraction: float = 0.1,
    chain_fraction: float = 0.35,
    exponent: float = 2.2,
    rng: np.random.Generator | int | None = None,
    weights_seed: int | None = None,
) -> EdgeList:
    """Synthetic substitute for the WDC 2012 hyperlink graph.

    The characteristic the paper emphasises is the *long tail*: BFS takes
    hundreds of iterations because part of the graph is only reachable through
    long, thin paths, which makes per-iteration overhead dominate and DOBFS
    slightly slower than plain BFS.  We reproduce that by attaching long
    random chains (a ``chain_fraction`` of the non-isolated vertices) to a
    scale-free core.
    """
    if not 0.0 <= isolated_fraction < 1.0:
        raise ValueError("isolated_fraction must be in [0, 1)")
    if not 0.0 <= chain_fraction < 1.0:
        raise ValueError("chain_fraction must be in [0, 1)")
    gen = make_rng(rng)
    active = max(4, int(round(num_vertices * (1.0 - isolated_fraction))))
    chain_count = int(active * chain_fraction)
    core_count = active - chain_count
    core = power_law_configuration(
        max(2, core_count), mean_degree=mean_degree, exponent=exponent, rng=gen
    )
    src_parts = [core.src]
    dst_parts = [core.dst]
    if chain_count > 1:
        # One or more long chains hanging off random core vertices.
        chain_ids = np.arange(core_count, core_count + chain_count, dtype=np.int64)
        num_chains = max(1, chain_count // 4096)
        bounds = np.linspace(0, chain_count, num_chains + 1).astype(np.int64)
        chain_src = []
        chain_dst = []
        for ci in range(num_chains):
            lo, hi = int(bounds[ci]), int(bounds[ci + 1])
            if hi - lo < 1:
                continue
            segment = chain_ids[lo:hi]
            anchor = int(gen.integers(0, max(1, core_count)))
            chain_src.append(np.concatenate([[anchor], segment[:-1]]))
            chain_dst.append(segment)
        if chain_src:
            src_parts.append(np.concatenate(chain_src))
            dst_parts.append(np.concatenate(chain_dst))
    src = np.concatenate(src_parts)
    dst = np.concatenate(dst_parts)
    placement = gen.permutation(num_vertices)[:active].astype(np.int64)
    psrc, pdst = placement[src], placement[dst]
    w = None
    if weights_seed is not None:
        from repro.graph.weights import edge_keyed_weights

        # Keyed on the *placed* ids so the chunked generator — which places
        # before yielding — computes identical weights.
        w = edge_keyed_weights(psrc, pdst, num_vertices, seed=weights_seed)
    return EdgeList(psrc, pdst, num_vertices, weights=w)


def wdc_like_edge_chunks(
    num_vertices: int = 1 << 18,
    mean_degree: float = 8.0,
    isolated_fraction: float = 0.1,
    chain_fraction: float = 0.35,
    exponent: float = 2.2,
    seed: int = 11,
    chunk_edges: int = 1 << 20,
    weights_seed: int | None = None,
):
    """Yield WDC-like edges in bounded ``(src, dst)`` chunks.

    The streaming counterpart of :func:`wdc_like` for the out-of-core build
    path (:func:`repro.storage.extsort.external_build`): only the O(n)
    per-vertex arrays (core degree sequence, placement permutation) stay
    resident, and edge emission — the O(m) part — is bounded by
    ``chunk_edges``.  Deterministic per ``(seed, chunk_edges)``, but a
    *different* (equally valid) draw than :func:`wdc_like`'s, because the
    random stream is consumed per chunk rather than all at once.
    """
    if not 0.0 <= isolated_fraction < 1.0:
        raise ValueError("isolated_fraction must be in [0, 1)")
    if not 0.0 <= chain_fraction < 1.0:
        raise ValueError("chain_fraction must be in [0, 1)")
    if chunk_edges < 1:
        raise ValueError("chunk_edges must be >= 1")
    gen = make_rng(seed)
    active = max(4, int(round(num_vertices * (1.0 - isolated_fraction))))
    chain_count = int(active * chain_fraction)
    core_count = active - chain_count
    core_n = max(2, core_count)
    degrees = _power_law_degrees(core_n, mean_degree, exponent, None, gen)
    cum = np.concatenate([[0], np.cumsum(degrees)]).astype(np.int64)
    total_core = int(cum[-1])
    placement = gen.permutation(num_vertices)[:active].astype(np.int64)

    def emit(ps: np.ndarray, pd: np.ndarray):
        if weights_seed is None:
            return ps, pd
        from repro.graph.weights import edge_keyed_weights

        return ps, pd, edge_keyed_weights(ps, pd, num_vertices, seed=weights_seed)

    # Scale-free core: the stub expansion src = repeat(arange, degrees) is
    # sliced into edge ranges [e0, e1); searchsorted on the degree cumsum
    # recovers which vertices' stubs fall in the slice.
    num_core_chunks = (total_core + chunk_edges - 1) // chunk_edges
    children = (
        np.random.SeedSequence(seed + 1).spawn(num_core_chunks) if num_core_chunks else []
    )
    for index, child in enumerate(children):
        cgen = np.random.default_rng(child)
        e0 = index * chunk_edges
        e1 = min(total_core, e0 + chunk_edges)
        r0 = int(np.searchsorted(cum, e0, side="right") - 1)
        r1 = int(np.searchsorted(cum, e1, side="left"))
        counts = np.minimum(cum[r0 + 1 : r1 + 1], e1) - np.maximum(cum[r0:r1], e0)
        src = np.repeat(np.arange(r0, r1, dtype=np.int64), counts)
        dst = cgen.integers(0, core_n, size=e1 - e0).astype(np.int64)
        yield emit(placement[src], placement[dst])

    # Long chains: generated per chain (each at most a few thousand edges),
    # buffered up to chunk_edges, then flushed in bounded slices.
    if chain_count > 1:
        chain_ids = np.arange(core_count, core_count + chain_count, dtype=np.int64)
        num_chains = max(1, chain_count // 4096)
        bounds = np.linspace(0, chain_count, num_chains + 1).astype(np.int64)
        buf_src: list[np.ndarray] = []
        buf_dst: list[np.ndarray] = []
        buffered = 0

        def drain():
            nonlocal buf_src, buf_dst, buffered
            src = np.concatenate(buf_src)
            dst = np.concatenate(buf_dst)
            buf_src, buf_dst, buffered = [], [], 0
            for s0 in range(0, src.size, chunk_edges):
                sl = slice(s0, s0 + chunk_edges)
                yield emit(placement[src[sl]], placement[dst[sl]])

        for ci in range(num_chains):
            lo, hi = int(bounds[ci]), int(bounds[ci + 1])
            if hi - lo < 1:
                continue
            segment = chain_ids[lo:hi]
            anchor = int(gen.integers(0, max(1, core_count)))
            buf_src.append(np.concatenate([[anchor], segment[:-1]]))
            buf_dst.append(segment)
            buffered += hi - lo
            if buffered >= chunk_edges:
                yield from drain()
        if buffered:
            yield from drain()


def uniform_random_graph(
    num_vertices: int,
    num_edges: int,
    rng: np.random.Generator | int | None = None,
    weights_seed: int | None = None,
) -> EdgeList:
    """Erdős–Rényi-style directed multigraph: each edge endpoint uniform.

    With ``weights_seed`` set, the result carries deterministic edge-keyed
    weights (:func:`repro.graph.weights.edge_keyed_weights`).
    """
    if num_vertices <= 0:
        raise ValueError("num_vertices must be positive")
    if num_edges < 0:
        raise ValueError("num_edges must be non-negative")
    gen = make_rng(rng)
    src = gen.integers(0, num_vertices, size=num_edges).astype(np.int64)
    dst = gen.integers(0, num_vertices, size=num_edges).astype(np.int64)
    w = None
    if weights_seed is not None:
        from repro.graph.weights import edge_keyed_weights

        w = edge_keyed_weights(src, dst, num_vertices, seed=weights_seed)
    return EdgeList(src, dst, num_vertices, weights=w)


def random_bipartite(
    left: int,
    right: int,
    num_edges: int,
    rng: np.random.Generator | int | None = None,
) -> EdgeList:
    """Random bipartite graph with left vertices ``[0, left)`` and right
    vertices ``[left, left+right)``."""
    if left <= 0 or right <= 0:
        raise ValueError("both sides of the bipartite graph must be non-empty")
    gen = make_rng(rng)
    src = gen.integers(0, left, size=num_edges).astype(np.int64)
    dst = (left + gen.integers(0, right, size=num_edges)).astype(np.int64)
    return EdgeList(src, dst, left + right)


# --------------------------------------------------------------------------- #
# Small deterministic generators (mostly for tests)
# --------------------------------------------------------------------------- #
def path_edges(num_vertices: int) -> EdgeList:
    """Directed path 0 -> 1 -> ... -> n-1."""
    if num_vertices < 1:
        raise ValueError("path needs at least one vertex")
    src = np.arange(num_vertices - 1, dtype=np.int64)
    return EdgeList(src, src + 1, num_vertices)


def cycle_edges(num_vertices: int) -> EdgeList:
    """Directed cycle 0 -> 1 -> ... -> n-1 -> 0."""
    if num_vertices < 1:
        raise ValueError("cycle needs at least one vertex")
    src = np.arange(num_vertices, dtype=np.int64)
    dst = (src + 1) % num_vertices
    return EdgeList(src, dst, num_vertices)


def star_edges(num_leaves: int) -> EdgeList:
    """Star: vertex 0 points to vertices 1..num_leaves.

    The hub has out-degree ``num_leaves``; with any threshold below that the
    hub becomes a delegate, which makes stars the smallest interesting test
    case for degree separation.
    """
    if num_leaves < 0:
        raise ValueError("num_leaves must be non-negative")
    src = np.zeros(num_leaves, dtype=np.int64)
    dst = np.arange(1, num_leaves + 1, dtype=np.int64)
    return EdgeList(src, dst, num_leaves + 1)


def grid_edges(rows: int, cols: int) -> EdgeList:
    """4-neighbour grid graph (directed edges in +row and +col directions)."""
    if rows < 1 or cols < 1:
        raise ValueError("grid dimensions must be positive")
    ids = np.arange(rows * cols, dtype=np.int64).reshape(rows, cols)
    right_src = ids[:, :-1].ravel()
    right_dst = ids[:, 1:].ravel()
    down_src = ids[:-1, :].ravel()
    down_dst = ids[1:, :].ravel()
    src = np.concatenate([right_src, down_src])
    dst = np.concatenate([right_dst, down_dst])
    return EdgeList(src, dst, rows * cols)


def clique_edges(num_vertices: int) -> EdgeList:
    """Complete directed graph (no self loops)."""
    if num_vertices < 1:
        raise ValueError("clique needs at least one vertex")
    src, dst = np.meshgrid(
        np.arange(num_vertices, dtype=np.int64),
        np.arange(num_vertices, dtype=np.int64),
        indexing="ij",
    )
    keep = src != dst
    return EdgeList(src[keep].ravel(), dst[keep].ravel(), num_vertices)


def binary_tree_edges(depth: int) -> EdgeList:
    """Complete binary tree of the given depth, edges from parent to child."""
    if depth < 0:
        raise ValueError("depth must be non-negative")
    n = (1 << (depth + 1)) - 1
    child = np.arange(1, n, dtype=np.int64)
    parent = (child - 1) // 2
    return EdgeList(parent, child, n)
