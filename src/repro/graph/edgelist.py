"""Edge-list container and canonical graph-preparation operations.

The paper prepares every input graph the same way (§VI-A3 and §VI-D):

1. generate or load a directed edge list,
2. make it symmetric by *edge doubling* (adding the reverse of every edge),
3. randomise vertex numbers with a deterministic hash, and
4. hand the result to the partitioner.

:class:`EdgeList` is the container those steps operate on.  It stores the
sources and destinations as two parallel ``int64`` arrays, which matches the
"conventional edge list representation" (16 bytes per undirected edge) the
paper uses as the memory baseline for Table I.  An optional third parallel
``float64`` array carries per-edge weights for the weighted program zoo
(``repro.weighted``); every preparation step threads it alongside the
endpoints, combining duplicates with ``min`` so deduplication stays
deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["EdgeList"]


@dataclass
class EdgeList:
    """A directed edge list over vertices ``[0, num_vertices)``.

    Attributes
    ----------
    src, dst:
        Parallel ``int64`` arrays of edge endpoints.
    num_vertices:
        Number of vertices in the graph (may exceed ``max(src, dst) + 1`` to
        represent isolated vertices, as in the WDC graph where ~400 M vertices
        have zero degree).
    weights:
        Optional parallel ``float64`` array of non-negative finite per-edge
        weights; ``None`` for unweighted graphs.
    """

    src: np.ndarray
    dst: np.ndarray
    num_vertices: int
    weights: np.ndarray | None = None

    def __post_init__(self) -> None:
        self.src = np.asarray(self.src, dtype=np.int64).ravel()
        self.dst = np.asarray(self.dst, dtype=np.int64).ravel()
        if self.src.shape != self.dst.shape:
            raise ValueError(
                f"src and dst must have the same length, got {self.src.size} and {self.dst.size}"
            )
        if self.weights is not None:
            from repro.graph.weights import validate_weights

            self.weights = validate_weights(self.weights, self.src.size)
        self.num_vertices = int(self.num_vertices)
        if self.num_vertices < 0:
            raise ValueError("num_vertices must be non-negative")
        if self.src.size:
            vmax = int(max(self.src.max(), self.dst.max()))
            vmin = int(min(self.src.min(), self.dst.min()))
            if vmin < 0:
                raise ValueError("edge endpoints must be non-negative")
            if vmax >= self.num_vertices:
                raise ValueError(
                    f"edge endpoint {vmax} out of range for num_vertices={self.num_vertices}"
                )

    # ------------------------------------------------------------------ #
    # Basic properties
    # ------------------------------------------------------------------ #
    @property
    def num_edges(self) -> int:
        """Number of directed edges."""
        return int(self.src.size)

    @property
    def is_weighted(self) -> bool:
        """``True`` when a per-edge weight array is attached."""
        return self.weights is not None

    def nbytes_edge_list(self) -> int:
        """Memory footprint of the conventional 64-bit edge-list format.

        This is the ``16m`` bytes baseline the paper compares its partitioned
        representation against in §III-C.
        """
        return 16 * self.num_edges

    def copy(self) -> "EdgeList":
        """Deep copy."""
        w = self.weights.copy() if self.weights is not None else None
        return EdgeList(self.src.copy(), self.dst.copy(), self.num_vertices, weights=w)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        tag = ", weighted" if self.is_weighted else ""
        return f"EdgeList(n={self.num_vertices}, m={self.num_edges}{tag})"

    # ------------------------------------------------------------------ #
    # Canonical preparation steps
    # ------------------------------------------------------------------ #
    def symmetrized(self) -> "EdgeList":
        """Return the edge-doubled (undirected) version of this edge list.

        Every directed edge ``u -> v`` gains its reverse ``v -> u``.  This is
        exactly the paper's "make the graph undirected by edge doubling"; the
        resulting edge count is ``2 m`` before deduplication.
        """
        src = np.concatenate([self.src, self.dst])
        dst = np.concatenate([self.dst, self.src])
        w = None
        if self.weights is not None:
            w = np.concatenate([self.weights, self.weights])
        return EdgeList(src, dst, self.num_vertices, weights=w)

    def deduplicated(self) -> "EdgeList":
        """Remove duplicate directed edges (keeping one copy of each).

        Weighted lists keep the *minimum* weight among a group of duplicate
        edges, which is both deterministic and the semantically right merge
        for shortest-path programs.
        """
        if self.num_edges == 0:
            return self.copy()
        # num_vertices^2 may overflow int64 for pathological inputs; fall back
        # to structured sort in that case.
        overflow = self.num_vertices and self.num_vertices > np.iinfo(np.int64).max // max(
            self.num_vertices, 1
        )
        if overflow:
            order = np.lexsort((self.dst, self.src))
            s, d = self.src[order], self.dst[order]
            keep = np.ones(s.size, dtype=bool)
            keep[1:] = (s[1:] != s[:-1]) | (d[1:] != d[:-1])
            w = None
            if self.weights is not None:
                w = np.minimum.reduceat(self.weights[order], np.flatnonzero(keep))
            return EdgeList(s[keep], d[keep], self.num_vertices, weights=w)
        keys = self.src * np.int64(self.num_vertices) + self.dst
        if self.weights is None:
            uniq = np.unique(keys)
            return EdgeList(uniq // self.num_vertices, uniq % self.num_vertices, self.num_vertices)
        order = np.argsort(keys, kind="stable")
        sk = keys[order]
        keep = np.ones(sk.size, dtype=bool)
        keep[1:] = sk[1:] != sk[:-1]
        uniq = sk[keep]
        w = np.minimum.reduceat(self.weights[order], np.flatnonzero(keep))
        return EdgeList(
            uniq // self.num_vertices, uniq % self.num_vertices, self.num_vertices, weights=w
        )

    def without_self_loops(self) -> "EdgeList":
        """Remove ``u -> u`` edges."""
        keep = self.src != self.dst
        w = self.weights[keep] if self.weights is not None else None
        return EdgeList(self.src[keep], self.dst[keep], self.num_vertices, weights=w)

    def relabeled(self, permutation: np.ndarray) -> "EdgeList":
        """Apply a vertex permutation ``perm[old] = new`` to both endpoints."""
        perm = np.asarray(permutation, dtype=np.int64)
        if perm.shape != (self.num_vertices,):
            raise ValueError(
                f"permutation must have shape ({self.num_vertices},), got {perm.shape}"
            )
        if perm.size:
            check = np.zeros(self.num_vertices, dtype=bool)
            check[perm] = True
            if not check.all():
                raise ValueError("permutation is not a bijection on [0, num_vertices)")
        return EdgeList(perm[self.src], perm[self.dst], self.num_vertices, weights=self.weights)

    def is_symmetric(self) -> bool:
        """``True`` if for every edge ``u -> v`` the edge ``v -> u`` also exists."""
        fwd = self.deduplicated()
        rev = EdgeList(fwd.dst, fwd.src, self.num_vertices).deduplicated()
        if fwd.num_edges != rev.num_edges:
            return False
        return bool(
            np.array_equal(fwd.src, rev.src) and np.array_equal(fwd.dst, rev.dst)
        )

    def prepared(self, hash_seed: int | None = 1) -> "EdgeList":
        """Full Graph500-style preparation: doubling, dedup, loop removal, hashing.

        Parameters
        ----------
        hash_seed:
            Seed for the deterministic vertex-hash permutation; ``None`` skips
            the relabeling step (useful in tests where vertex ids must stay
            meaningful).
        """
        from repro.utils.rng import deterministic_hash_permutation

        out = self.without_self_loops().symmetrized().deduplicated()
        if hash_seed is not None:
            perm = deterministic_hash_permutation(self.num_vertices, seed=hash_seed)
            out = out.relabeled(perm)
        return out
