"""Whole-graph statistics used for experiment reporting and sanity checks.

These are not on the BFS hot path; they use :mod:`scipy.sparse.csgraph` where
convenient and exist so that examples and experiment logs can report the same
graph characteristics the paper quotes (number of vertices/edges, isolated
vertices, number of components, approximate diameter / BFS depth).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.sparse import csr_matrix
from scipy.sparse.csgraph import connected_components

from repro.graph.degree import out_degrees
from repro.graph.edgelist import EdgeList

__all__ = ["GraphProperties", "analyze_graph", "bfs_depth_estimate"]


@dataclass(frozen=True)
class GraphProperties:
    """Summary of a prepared graph."""

    num_vertices: int
    num_directed_edges: int
    num_isolated: int
    num_components: int
    largest_component_size: int
    max_out_degree: int
    mean_out_degree: float
    approx_diameter: int

    def as_dict(self) -> dict:
        """Return the properties as a plain dictionary."""
        return {
            "num_vertices": self.num_vertices,
            "num_directed_edges": self.num_directed_edges,
            "num_isolated": self.num_isolated,
            "num_components": self.num_components,
            "largest_component_size": self.largest_component_size,
            "max_out_degree": self.max_out_degree,
            "mean_out_degree": self.mean_out_degree,
            "approx_diameter": self.approx_diameter,
        }


def _to_scipy(edges: EdgeList) -> csr_matrix:
    data = np.ones(edges.num_edges, dtype=np.int8)
    return csr_matrix(
        (data, (edges.src, edges.dst)), shape=(edges.num_vertices, edges.num_vertices)
    )


def bfs_depth_estimate(edges: EdgeList, source: int | None = None) -> int:
    """Depth of a BFS from ``source`` (or from a max-degree vertex).

    Used as a cheap diameter proxy; the true diameter is at most twice this
    for undirected graphs.
    """
    if edges.num_vertices == 0:
        return 0
    deg = out_degrees(edges)
    if source is None:
        source = int(np.argmax(deg))
    from scipy.sparse.csgraph import breadth_first_order

    mat = _to_scipy(edges)
    order, predecessors = breadth_first_order(
        mat, i_start=source, directed=True, return_predecessors=True
    )
    # Depth = longest predecessor chain; compute by walking levels.
    levels = np.full(edges.num_vertices, -1, dtype=np.int64)
    levels[source] = 0
    for v in order[1:]:
        levels[v] = levels[predecessors[v]] + 1
    return int(levels.max())


def analyze_graph(edges: EdgeList) -> GraphProperties:
    """Compute :class:`GraphProperties` for a (typically prepared) edge list."""
    deg = out_degrees(edges)
    if edges.num_vertices == 0:
        return GraphProperties(0, 0, 0, 0, 0, 0, 0.0, 0)
    mat = _to_scipy(edges)
    n_comp, labels = connected_components(mat, directed=True, connection="weak")
    sizes = np.bincount(labels)
    return GraphProperties(
        num_vertices=edges.num_vertices,
        num_directed_edges=edges.num_edges,
        num_isolated=int(np.count_nonzero(deg == 0)),
        num_components=int(n_comp),
        largest_component_size=int(sizes.max()) if sizes.size else 0,
        max_out_degree=int(deg.max()) if deg.size else 0,
        mean_out_degree=float(deg.mean()) if deg.size else 0.0,
        approx_diameter=bfs_depth_estimate(edges),
    )
