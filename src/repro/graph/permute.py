"""Vertex-permutation helpers.

A thin wrapper over :func:`repro.utils.rng.deterministic_hash_permutation`
exposing the operation the paper performs after graph generation: "Vertex
numbers are randomized using a deterministic hashing function after edge
generation" (§VI-A3).  Randomizing the ids destroys any locality the generator
introduced, so the modular edge distributor (Algorithm 1) produces balanced
partitions without needing an explicit shuffle table.
"""

from __future__ import annotations

import numpy as np

from repro.graph.edgelist import EdgeList
from repro.utils.rng import deterministic_hash_permutation

__all__ = ["apply_vertex_permutation", "hashed_relabel", "invert_permutation"]


def invert_permutation(perm: np.ndarray) -> np.ndarray:
    """Return the inverse permutation: if ``perm[old] = new``, then
    ``inv[new] = old``."""
    perm = np.asarray(perm, dtype=np.int64)
    inv = np.empty_like(perm)
    inv[perm] = np.arange(perm.size, dtype=np.int64)
    return inv


def apply_vertex_permutation(edges: EdgeList, perm: np.ndarray) -> EdgeList:
    """Relabel an edge list with ``perm[old] = new`` (delegates to EdgeList)."""
    return edges.relabeled(perm)


def hashed_relabel(edges: EdgeList, seed: int = 1) -> tuple[EdgeList, np.ndarray]:
    """Apply the deterministic hash permutation and also return it.

    Returns
    -------
    (relabeled_edges, perm):
        The relabeled edge list and the permutation used, so callers can map
        BFS results (hop distances indexed by new ids) back to original ids.
    """
    perm = deterministic_hash_permutation(edges.num_vertices, seed=seed)
    return edges.relabeled(perm), perm
