"""Graph substrate: generation, representation and basic analysis.

This package provides everything the BFS system needs *below* the
partitioning layer:

``edgelist``
    The :class:`EdgeList` container and operations on it (symmetrization by
    edge doubling, deduplication, self-loop removal, vertex relabeling).
``rmat``
    A Graph500-conformant RMAT/Kronecker generator with the paper's
    parameters (A,B,C,D = 0.57, 0.19, 0.19, 0.05, edge factor 16) and the
    deterministic vertex-hashing permutation applied after generation.
``generators``
    Additional synthetic graphs: scale-free configuration-model graphs that
    stand in for the Friendster social network and the WDC 2012 hyperlink
    graph, plus small deterministic graphs (paths, grids, stars, cliques)
    used heavily in the test suite.
``csr``
    Compressed Sparse Row adjacency used by every traversal kernel.
``degree``
    Degree computation and degree-distribution summaries.
``properties``
    Graph statistics (connected components, approximate diameter, etc.).
``io``
    Simple binary/text edge-list persistence.
"""

from repro.graph.csr import CSRGraph
from repro.graph.degree import degree_histogram, out_degrees
from repro.graph.edgelist import EdgeList
from repro.graph.generators import (
    clique_edges,
    friendster_like,
    grid_edges,
    path_edges,
    random_bipartite,
    star_edges,
    uniform_random_graph,
    wdc_like,
)
from repro.graph.permute import apply_vertex_permutation
from repro.graph.properties import GraphProperties, analyze_graph
from repro.graph.rmat import RMATParameters, generate_rmat

__all__ = [
    "EdgeList",
    "CSRGraph",
    "RMATParameters",
    "generate_rmat",
    "friendster_like",
    "wdc_like",
    "uniform_random_graph",
    "random_bipartite",
    "path_edges",
    "grid_edges",
    "star_edges",
    "clique_edges",
    "out_degrees",
    "degree_histogram",
    "apply_vertex_permutation",
    "GraphProperties",
    "analyze_graph",
]
