"""Compressed Sparse Row (CSR) adjacency structure.

The paper deliberately keeps the *standard* CSR format for each per-GPU
subgraph (§II-D): "We instead choose a standard graph representation (CSR)"
so the BFS can be one component in a larger workflow without format
conversions.  :class:`CSRGraph` is that structure: a ``row_offsets`` array of
length ``num_rows + 1`` and a ``column_indices`` array of length ``num_edges``.

The dtype of ``column_indices`` is significant for the memory model of
Table I: subgraphs whose destination range is bounded (nd, dn, dd) store
32-bit column indices, while the nn subgraph keeps 64-bit global destination
ids.  :class:`CSRGraph` therefore carries its column dtype explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.edgelist import EdgeList

__all__ = ["CSRGraph"]


@dataclass
class CSRGraph:
    """CSR adjacency with explicit row and column universes.

    Attributes
    ----------
    row_offsets:
        ``int64`` array of length ``num_rows + 1``; neighbours of row ``r``
        are ``column_indices[row_offsets[r]:row_offsets[r+1]]``.
    column_indices:
        Destination ids; dtype is either ``int32`` (bounded local ids) or
        ``int64`` (global ids), mirroring the paper's mixed-width storage.
    num_rows:
        Number of source vertices (rows).
    num_cols:
        Size of the destination universe; column values must be < num_cols.
    edge_weights:
        Optional ``float64`` array parallel to ``column_indices`` carrying
        per-edge weights (``None`` for unweighted graphs).  Weights ride the
        same lexsort order as the columns, so ``edge_weights[i]`` belongs to
        the edge stored at ``column_indices[i]``.
    """

    row_offsets: np.ndarray
    column_indices: np.ndarray
    num_rows: int
    num_cols: int
    edge_weights: np.ndarray | None = None

    def __post_init__(self) -> None:
        self.row_offsets = np.asarray(self.row_offsets, dtype=np.int64).ravel()
        col = np.asarray(self.column_indices).ravel()
        if col.dtype not in (np.dtype(np.int32), np.dtype(np.int64)):
            col = col.astype(np.int64)
        self.column_indices = col
        self.num_rows = int(self.num_rows)
        self.num_cols = int(self.num_cols)
        if self.row_offsets.size != self.num_rows + 1:
            raise ValueError(
                f"row_offsets has length {self.row_offsets.size}, expected {self.num_rows + 1}"
            )
        if self.row_offsets.size and self.row_offsets[0] != 0:
            raise ValueError("row_offsets must start at 0")
        if np.any(np.diff(self.row_offsets) < 0):
            raise ValueError("row_offsets must be non-decreasing")
        if self.row_offsets.size and self.row_offsets[-1] != self.column_indices.size:
            raise ValueError(
                f"row_offsets[-1]={self.row_offsets[-1]} does not match "
                f"column_indices length {self.column_indices.size}"
            )
        if self.column_indices.size:
            cmin, cmax = int(self.column_indices.min()), int(self.column_indices.max())
            if cmin < 0 or cmax >= self.num_cols:
                raise ValueError(
                    f"column index out of range [0, {self.num_cols}): min={cmin}, max={cmax}"
                )
        if self.edge_weights is not None:
            from repro.graph.weights import validate_weights

            self.edge_weights = validate_weights(self.edge_weights, self.column_indices.size)

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_edges(
        cls,
        src: np.ndarray,
        dst: np.ndarray,
        num_rows: int,
        num_cols: int,
        column_dtype: np.dtype | type = np.int64,
        sort_columns: bool = True,
        weights: np.ndarray | None = None,
    ) -> "CSRGraph":
        """Build a CSR from parallel source/destination arrays.

        Parameters
        ----------
        src, dst:
            Edge endpoints; ``src`` values index rows, ``dst`` values columns.
        num_rows, num_cols:
            Sizes of the row and column universes.
        column_dtype:
            ``numpy.int32`` for bounded local ids or ``numpy.int64`` for
            global ids.
        sort_columns:
            Sort neighbours within each row (deterministic layout; also makes
            duplicate detection in tests cheap).
        weights:
            Optional per-edge weights parallel to ``src``/``dst``; reordered
            with the columns so they stay edge-aligned.
        """
        src = np.asarray(src, dtype=np.int64).ravel()
        dst = np.asarray(dst, dtype=np.int64).ravel()
        if src.shape != dst.shape:
            raise ValueError("src and dst must have the same length")
        if src.size:
            if src.min() < 0 or src.max() >= num_rows:
                raise ValueError("source vertex out of row range")
            if dst.min() < 0 or dst.max() >= num_cols:
                raise ValueError("destination vertex out of column range")
        counts = np.bincount(src, minlength=num_rows) if num_rows else np.zeros(0, dtype=np.int64)
        row_offsets = np.zeros(num_rows + 1, dtype=np.int64)
        np.cumsum(counts, out=row_offsets[1:])
        if sort_columns:
            order = np.lexsort((dst, src))
        else:
            order = np.argsort(src, kind="stable")
        columns = dst[order].astype(column_dtype)
        w = None
        if weights is not None:
            w = np.asarray(weights, dtype=np.float64).ravel()
            if w.size != src.size:
                raise ValueError("weights must be parallel to src/dst")
            w = w[order]
        return cls(row_offsets, columns, num_rows, num_cols, edge_weights=w)

    @classmethod
    def from_edgelist(cls, edges: EdgeList, column_dtype: np.dtype | type = np.int64) -> "CSRGraph":
        """Build a square CSR over the edge list's full vertex universe."""
        return cls.from_edges(
            edges.src,
            edges.dst,
            num_rows=edges.num_vertices,
            num_cols=edges.num_vertices,
            column_dtype=column_dtype,
            weights=edges.weights,
        )

    @classmethod
    def empty(cls, num_rows: int, num_cols: int, column_dtype: np.dtype | type = np.int64) -> "CSRGraph":
        """An edgeless CSR of the given shape."""
        return cls(
            np.zeros(num_rows + 1, dtype=np.int64),
            np.zeros(0, dtype=column_dtype),
            num_rows,
            num_cols,
        )

    @classmethod
    def unchecked(
        cls,
        row_offsets: np.ndarray,
        column_indices: np.ndarray,
        num_rows: int,
        num_cols: int,
        edge_weights: np.ndarray | None = None,
    ) -> "CSRGraph":
        """Wrap already-validated arrays without the O(edges) invariant scan.

        Used for zero-copy views over shared-memory segments and memory-mapped
        storage files, and for the masked row subsets the compressed-adjacency
        decoder materializes per super-step: re-validating every attach would
        cost more than the kernels it feeds.  Callers own the invariants.
        """
        csr = object.__new__(cls)
        csr.row_offsets = row_offsets
        csr.column_indices = column_indices
        csr.num_rows = num_rows
        csr.num_cols = num_cols
        csr.edge_weights = edge_weights
        return csr

    # ------------------------------------------------------------------ #
    # Properties and access
    # ------------------------------------------------------------------ #
    @property
    def num_edges(self) -> int:
        """Number of stored (directed) edges."""
        return int(self.column_indices.size)

    @property
    def column_dtype(self) -> np.dtype:
        """Dtype of the column indices (``int32`` or ``int64``)."""
        return self.column_indices.dtype

    @property
    def is_weighted(self) -> bool:
        """``True`` when a per-edge weight array is attached."""
        return self.edge_weights is not None

    def out_degrees(self) -> np.ndarray:
        """Out-degree of every row."""
        return np.diff(self.row_offsets)

    def neighbors(self, row: int) -> np.ndarray:
        """Neighbour list of a single row (a view, not a copy)."""
        if row < 0 or row >= self.num_rows:
            raise IndexError(f"row {row} out of range [0, {self.num_rows})")
        return self.column_indices[self.row_offsets[row] : self.row_offsets[row + 1]]

    def nbytes(self) -> int:
        """Memory footprint in bytes of offsets + columns.

        This matches the accounting of the paper's Table I, which charges
        4 bytes per row offset entry (the paper stores 32-bit offsets for the
        bounded-size subgraphs) only when the column dtype is 32-bit; 64-bit
        columns are charged 8 bytes per offset as in a conventional CSR.
        """
        offset_width = 4 if self.column_dtype == np.int32 else 8
        return offset_width * (self.num_rows + 1) + self.column_indices.itemsize * self.num_edges

    # ------------------------------------------------------------------ #
    # Bulk traversal helpers (used by the visit kernels)
    # ------------------------------------------------------------------ #
    def gather_neighbors(self, rows: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Gather the concatenated neighbour lists of ``rows``.

        Returns
        -------
        (sources, destinations):
            Two parallel arrays: for each edge out of any row in ``rows``, the
            row it came from and the destination column.  This is the
            vectorized equivalent of the forward-push "advance" operation on a
            frontier; it is the single hottest helper in the library.
        """
        rows = np.asarray(rows, dtype=np.int64).ravel()
        if rows.size == 0:
            return np.zeros(0, dtype=np.int64), np.zeros(0, dtype=self.column_dtype)
        if rows.min() < 0 or rows.max() >= self.num_rows:
            raise IndexError("row index out of range in gather_neighbors")
        starts = self.row_offsets[rows]
        ends = self.row_offsets[rows + 1]
        lengths = ends - starts
        total = int(lengths.sum())
        if total == 0:
            return np.zeros(0, dtype=np.int64), np.zeros(0, dtype=self.column_dtype)
        # Build a single index array covering all the per-row slices without a
        # Python loop: offsets within the output, then add per-row start.
        out_starts = np.zeros(rows.size, dtype=np.int64)
        np.cumsum(lengths[:-1], out=out_starts[1:])
        idx = np.arange(total, dtype=np.int64)
        row_of_edge = np.repeat(np.arange(rows.size, dtype=np.int64), lengths)
        within = idx - out_starts[row_of_edge]
        edge_idx = starts[row_of_edge] + within
        return rows[row_of_edge], self.column_indices[edge_idx]

    def gather_neighbors_with_weights(
        self, rows: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Like :meth:`gather_neighbors` but also gathers the edge weights.

        Returns
        -------
        (sources, destinations, weights):
            Three parallel arrays; requires ``edge_weights`` to be attached.
        """
        if self.edge_weights is None:
            raise ValueError(
                "graph has no edge weights; build it with weights (e.g. "
                "--weights on the generators) before running a weighted program"
            )
        rows = np.asarray(rows, dtype=np.int64).ravel()
        if rows.size == 0:
            return (
                np.zeros(0, dtype=np.int64),
                np.zeros(0, dtype=self.column_dtype),
                np.zeros(0, dtype=np.float64),
            )
        if rows.min() < 0 or rows.max() >= self.num_rows:
            raise IndexError("row index out of range in gather_neighbors_with_weights")
        starts = self.row_offsets[rows]
        ends = self.row_offsets[rows + 1]
        lengths = ends - starts
        total = int(lengths.sum())
        if total == 0:
            return (
                np.zeros(0, dtype=np.int64),
                np.zeros(0, dtype=self.column_dtype),
                np.zeros(0, dtype=np.float64),
            )
        out_starts = np.zeros(rows.size, dtype=np.int64)
        np.cumsum(lengths[:-1], out=out_starts[1:])
        idx = np.arange(total, dtype=np.int64)
        row_of_edge = np.repeat(np.arange(rows.size, dtype=np.int64), lengths)
        within = idx - out_starts[row_of_edge]
        edge_idx = starts[row_of_edge] + within
        return (
            rows[row_of_edge],
            self.column_indices[edge_idx],
            self.edge_weights[edge_idx],
        )

    def frontier_workload(self, rows: np.ndarray) -> int:
        """Total neighbour-list length of the given rows (forward workload FV)."""
        rows = np.asarray(rows, dtype=np.int64).ravel()
        if rows.size == 0:
            return 0
        lengths = self.row_offsets[rows + 1] - self.row_offsets[rows]
        return int(lengths.sum())

    def reversed(self) -> "CSRGraph":
        """Return the transpose (reverse) CSR: an edge r->c becomes c->r."""
        if self.edge_weights is not None:
            src, dst, w = self.gather_neighbors_with_weights(
                np.arange(self.num_rows, dtype=np.int64)
            )
        else:
            src, dst = self.gather_neighbors(np.arange(self.num_rows, dtype=np.int64))
            w = None
        return CSRGraph.from_edges(
            np.asarray(dst, dtype=np.int64),
            src,
            num_rows=self.num_cols,
            num_cols=self.num_rows,
            column_dtype=np.int32 if self.num_rows <= np.iinfo(np.int32).max else np.int64,
            weights=w,
        )

    def to_scipy(self):
        """Convert to a ``scipy.sparse.csr_matrix`` of ones (for validation)."""
        from scipy.sparse import csr_matrix

        data = np.ones(self.num_edges, dtype=np.int8)
        return csr_matrix(
            (data, self.column_indices.astype(np.int64), self.row_offsets),
            shape=(self.num_rows, self.num_cols),
        )
