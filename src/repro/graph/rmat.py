"""Graph500-conformant RMAT (Kronecker) graph generator.

The paper evaluates on RMAT graphs generated per the Graph500 specification
(§VI-A3): edge factor 16, RMAT parameters ``A, B, C, D = 0.57, 0.19, 0.19,
0.05``, vertex numbers randomised by a deterministic hash after generation,
and the graph made undirected by edge doubling.  For a scale-``N`` graph the
number of vertices is ``2^N`` and the directed edge count before doubling is
``2^N * 16``.

The generator here is fully vectorized: all ``scale`` bit decisions for all
edges are drawn as NumPy arrays, so generating a scale-20 graph (16 M edges)
takes well under a second.  The recursive quadrant choice follows the
standard R-MAT construction of Chakrabarti et al. with per-level parameter
noise disabled (Graph500 uses fixed probabilities).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.edgelist import EdgeList
from repro.utils.rng import deterministic_hash_permutation, make_rng

__all__ = [
    "RMATParameters",
    "generate_rmat",
    "generate_rmat_edges",
    "generate_rmat_edge_chunks",
]


@dataclass(frozen=True)
class RMATParameters:
    """Parameters of the RMAT recursion.

    The defaults are the Graph500 values used throughout the paper.
    """

    a: float = 0.57
    b: float = 0.19
    c: float = 0.19
    d: float = 0.05
    edge_factor: int = 16

    def __post_init__(self) -> None:
        total = self.a + self.b + self.c + self.d
        if not np.isclose(total, 1.0, atol=1e-9):
            raise ValueError(f"RMAT probabilities must sum to 1, got {total}")
        if min(self.a, self.b, self.c, self.d) < 0:
            raise ValueError("RMAT probabilities must be non-negative")
        if self.edge_factor <= 0:
            raise ValueError("edge_factor must be positive")


def generate_rmat_edges(
    scale: int,
    params: RMATParameters = RMATParameters(),
    rng: np.random.Generator | int | None = None,
    num_edges: int | None = None,
    weights_seed: int | None = None,
) -> EdgeList:
    """Generate the raw directed RMAT edge list (no doubling, no hashing).

    Parameters
    ----------
    scale:
        Graph500 scale; the graph has ``2**scale`` vertices.
    params:
        RMAT recursion probabilities and edge factor.
    rng:
        Seed or generator for reproducibility.
    num_edges:
        Override the number of directed edges (default ``edge_factor * 2**scale``).
    weights_seed:
        When given, attach deterministic edge-keyed weights in ``[0, 1)``
        (:func:`repro.graph.weights.edge_keyed_weights`); the weight of an
        edge depends only on its endpoint pair and this seed, so the chunked
        generator emits identical weights.

    Returns
    -------
    EdgeList
        Directed edge list with ``num_edges`` edges; duplicates and self loops
        are *not* removed (Graph500 generators keep them; they are removed
        during preparation).
    """
    if scale < 0:
        raise ValueError(f"scale must be non-negative, got {scale}")
    if scale > 32:
        raise ValueError(
            f"scale {scale} would not fit in memory for this pure-Python reproduction"
        )
    gen = make_rng(rng)
    n = 1 << scale
    m = int(params.edge_factor * n) if num_edges is None else int(num_edges)
    if m < 0:
        raise ValueError("number of edges must be non-negative")

    src = np.zeros(m, dtype=np.int64)
    dst = np.zeros(m, dtype=np.int64)

    # Quadrant probabilities: the pair (row_bit, col_bit) is chosen as
    #   (0,0) with prob a, (0,1) with prob b, (1,0) with prob c, (1,1) with d.
    p_a, p_b, p_c = params.a, params.b, params.c
    for level in range(scale):
        r = gen.random(m)
        row_bit = (r >= p_a + p_b).astype(np.int64)
        col_bit = (((r >= p_a) & (r < p_a + p_b)) | (r >= p_a + p_b + p_c)).astype(np.int64)
        src = (src << 1) | row_bit
        dst = (dst << 1) | col_bit

    w = None
    if weights_seed is not None:
        from repro.graph.weights import edge_keyed_weights

        w = edge_keyed_weights(src, dst, n, seed=weights_seed)
    return EdgeList(src, dst, n, weights=w)


def generate_rmat_edge_chunks(
    scale: int,
    params: RMATParameters = RMATParameters(),
    seed: int = 11,
    chunk_edges: int = 1 << 20,
    num_edges: int | None = None,
    weights_seed: int | None = None,
):
    """Yield raw directed RMAT edges in bounded ``(src, dst)`` chunks.

    The streaming counterpart of :func:`generate_rmat_edges`: peak memory is
    bounded by ``chunk_edges`` regardless of scale, which is what the
    out-of-core build (:func:`repro.storage.extsort.external_build`)
    consumes.  Each chunk draws from its own generator spawned off one
    ``SeedSequence``, so the stream is deterministic per ``(scale, seed,
    chunk_edges)`` — but it is a *different* (equally valid Graph500) draw
    than the single-shot generator's, because the random stream is consumed
    per chunk rather than per level across all edges.

    With ``weights_seed`` set, chunks are ``(src, dst, weights)`` triples;
    the edge-keyed weights are chunk-boundary-invariant by construction.
    """
    if scale < 0:
        raise ValueError(f"scale must be non-negative, got {scale}")
    if scale > 32:
        raise ValueError(
            f"scale {scale} would not fit in memory for this pure-Python reproduction"
        )
    if chunk_edges < 1:
        raise ValueError("chunk_edges must be >= 1")
    n = 1 << scale
    m = int(params.edge_factor * n) if num_edges is None else int(num_edges)
    if m < 0:
        raise ValueError("number of edges must be non-negative")
    num_chunks = (m + chunk_edges - 1) // chunk_edges
    children = np.random.SeedSequence(seed).spawn(num_chunks) if num_chunks else []
    p_a, p_b, p_c = params.a, params.b, params.c
    for index, child in enumerate(children):
        gen = np.random.default_rng(child)
        count = min(chunk_edges, m - index * chunk_edges)
        src = np.zeros(count, dtype=np.int64)
        dst = np.zeros(count, dtype=np.int64)
        for _level in range(scale):
            r = gen.random(count)
            row_bit = (r >= p_a + p_b).astype(np.int64)
            col_bit = (((r >= p_a) & (r < p_a + p_b)) | (r >= p_a + p_b + p_c)).astype(
                np.int64
            )
            src = (src << 1) | row_bit
            dst = (dst << 1) | col_bit
        if weights_seed is not None:
            from repro.graph.weights import edge_keyed_weights

            yield src, dst, edge_keyed_weights(src, dst, n, seed=weights_seed)
        else:
            yield src, dst


def generate_rmat(
    scale: int,
    params: RMATParameters = RMATParameters(),
    rng: np.random.Generator | int | None = None,
    hash_seed: int | None = 1,
    symmetrize: bool = True,
    deduplicate: bool = True,
    weights_seed: int | None = None,
) -> EdgeList:
    """Generate a prepared Graph500 RMAT graph.

    This is the end-to-end path the paper uses: raw RMAT edges, optional
    deterministic vertex-number hashing, undirection by edge doubling, and
    removal of self loops and duplicate edges.

    Parameters
    ----------
    scale:
        Graph500 scale (``2**scale`` vertices).
    params:
        RMAT recursion parameters; the default matches the paper.
    rng:
        Seed or generator for edge generation.
    hash_seed:
        Seed for the deterministic vertex permutation, or ``None`` to skip it.
    symmetrize:
        Whether to apply edge doubling (the paper always does, because DOBFS
        without a global traversal direction needs a symmetric graph).
    deduplicate:
        Whether to remove duplicate edges and self loops.
    weights_seed:
        When given, attach deterministic edge-keyed weights (shared by the
        two directions of every undirected edge, so edge doubling and
        deduplication preserve them exactly).

    Returns
    -------
    EdgeList
        The prepared (by default symmetric, duplicate-free) edge list.
    """
    edges = generate_rmat_edges(scale, params=params, rng=rng, weights_seed=weights_seed)
    if hash_seed is not None:
        perm = deterministic_hash_permutation(edges.num_vertices, seed=hash_seed)
        edges = edges.relabeled(perm)
    if deduplicate:
        edges = edges.without_self_loops()
    if symmetrize:
        edges = edges.symmetrized()
    if deduplicate:
        edges = edges.deduplicated()
    return edges


def graph500_edge_count(scale: int, edge_factor: int = 16) -> int:
    """Number of edges used for TEPS accounting at a given scale.

    Graph500 (and the paper, §VI-A3) computes the traversal rate using
    ``m/2 = 2^N * 16`` even though the symmetrized graph stores twice that
    many directed edges.
    """
    if scale < 0:
        raise ValueError("scale must be non-negative")
    return (1 << scale) * edge_factor
