"""Edge-weight helpers: validation and deterministic weight synthesis.

Delta-stepping SSSP assumes non-negative edge weights, and every weighted
program in the zoo assumes finite ones, so :func:`validate_weights` is the
single chokepoint both the builders and the loaders call.

Synthetic graphs get their weights from :func:`edge_keyed_weights`: the weight
of an edge is a pure function of its (unordered) endpoint pair and a seed.
That makes weight emission *order-free* — the chunked generators, the edge
doubling step, deduplication, and the out-of-core sort can each see the edges
in a different order and still agree on every weight, and the two directions
of an undirected edge always share one weight.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import hash64

__all__ = ["validate_weights", "edge_keyed_weights"]

# 53 explicit mantissa bits: (h >> 11) * 2**-53 maps a uint64 hash uniformly
# onto [0, 1) with every value exactly representable in float64.
_INV_2_53 = 2.0**-53


def validate_weights(weights: np.ndarray, num_edges: int | None = None) -> np.ndarray:
    """Coerce ``weights`` to ``float64`` and reject values SSSP cannot take.

    Parameters
    ----------
    weights:
        Per-edge weight array (any real dtype).
    num_edges:
        Expected length; mismatch raises.

    Returns
    -------
    numpy.ndarray
        Contiguous ``float64`` array of validated weights.

    Raises
    ------
    ValueError
        If any weight is negative, NaN, or infinite, or the length is wrong.
    """
    w = np.ascontiguousarray(weights, dtype=np.float64).ravel()
    if num_edges is not None and w.size != int(num_edges):
        raise ValueError(
            f"weights has {w.size} entries, expected one per edge ({int(num_edges)})"
        )
    if w.size:
        if not np.isfinite(w).all():
            raise ValueError(
                "edge weights must be finite (found NaN or infinity); "
                "weighted programs require finite non-negative weights"
            )
        wmin = float(w.min())
        if wmin < 0.0:
            raise ValueError(
                f"edge weights must be non-negative (found {wmin}); "
                "delta-stepping SSSP assumes non-negative weights"
            )
    return w


def edge_keyed_weights(
    src: np.ndarray,
    dst: np.ndarray,
    num_vertices: int,
    seed: int = 0,
) -> np.ndarray:
    """Deterministic per-edge weights in ``[0, 1)`` keyed by endpoint pair.

    ``w(u, v) == w(v, u)`` for all seeds, and the value depends only on the
    unordered pair — not on emission order, chunk boundaries, or duplicates —
    so every pipeline stage recomputes identical weights.

    Parameters
    ----------
    src, dst:
        Parallel edge-endpoint arrays.
    num_vertices:
        Vertex-universe size used to pack the pair key (wraparound in the
        packing is harmless: the key is only ever hashed).
    seed:
        Weight-stream seed; different seeds give unrelated weights.
    """
    s = np.asarray(src, dtype=np.int64).ravel()
    d = np.asarray(dst, dtype=np.int64).ravel()
    if s.shape != d.shape:
        raise ValueError("src and dst must have the same length")
    lo = np.minimum(s, d).astype(np.uint64)
    hi = np.maximum(s, d).astype(np.uint64)
    with np.errstate(over="ignore"):
        keys = lo * np.uint64(max(int(num_vertices), 1)) + hi
    h = hash64(keys, seed=seed)
    return ((h >> np.uint64(11)).astype(np.float64)) * _INV_2_53
