"""Degree computation and degree-distribution summaries.

Degree separation — the core idea of the paper — is driven entirely by vertex
out-degrees: vertices with out-degree above the threshold ``TH`` become
delegates.  These helpers compute degrees from edge lists and summarise the
degree distribution, which the threshold-selection logic
(:mod:`repro.partition.delegates`) and the Figure 5/7/12 experiments build on.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.edgelist import EdgeList

__all__ = ["out_degrees", "in_degrees", "degree_histogram", "DegreeSummary", "degree_summary"]


def out_degrees(edges: EdgeList) -> np.ndarray:
    """Out-degree of every vertex (length ``num_vertices``)."""
    return np.bincount(edges.src, minlength=edges.num_vertices).astype(np.int64)


def in_degrees(edges: EdgeList) -> np.ndarray:
    """In-degree of every vertex (length ``num_vertices``)."""
    return np.bincount(edges.dst, minlength=edges.num_vertices).astype(np.int64)


def degree_histogram(degrees: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Histogram of a degree array.

    Returns
    -------
    (values, counts):
        ``values`` are the distinct degree values in ascending order and
        ``counts[i]`` is the number of vertices with degree ``values[i]``.
    """
    degrees = np.asarray(degrees, dtype=np.int64)
    if degrees.size == 0:
        return np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64)
    values, counts = np.unique(degrees, return_counts=True)
    return values, counts


@dataclass(frozen=True)
class DegreeSummary:
    """Summary statistics of a degree distribution."""

    num_vertices: int
    num_edges: int
    max_degree: int
    mean_degree: float
    median_degree: float
    isolated_vertices: int
    gini: float

    def as_dict(self) -> dict:
        """Return the summary as a plain dictionary."""
        return {
            "num_vertices": self.num_vertices,
            "num_edges": self.num_edges,
            "max_degree": self.max_degree,
            "mean_degree": self.mean_degree,
            "median_degree": self.median_degree,
            "isolated_vertices": self.isolated_vertices,
            "gini": self.gini,
        }


def _gini(degrees: np.ndarray) -> float:
    """Gini coefficient of the degree distribution (0 = uniform, ->1 = skewed).

    Scale-free graphs such as RMAT and social networks have a high Gini
    coefficient; this statistic is used in tests to confirm the synthetic
    Friendster/WDC substitutes are strongly skewed like the real datasets.
    """
    d = np.sort(np.asarray(degrees, dtype=np.float64))
    if d.size == 0 or d.sum() == 0:
        return 0.0
    n = d.size
    cum = np.cumsum(d)
    # Standard formula: G = (2 * sum_i i*d_i) / (n * sum d) - (n + 1) / n
    idx = np.arange(1, n + 1, dtype=np.float64)
    return float((2.0 * np.sum(idx * d)) / (n * cum[-1]) - (n + 1.0) / n)


def degree_summary(edges: EdgeList) -> DegreeSummary:
    """Compute a :class:`DegreeSummary` for an edge list."""
    deg = out_degrees(edges)
    if deg.size == 0:
        return DegreeSummary(0, edges.num_edges, 0, 0.0, 0.0, 0, 0.0)
    return DegreeSummary(
        num_vertices=edges.num_vertices,
        num_edges=edges.num_edges,
        max_degree=int(deg.max()),
        mean_degree=float(deg.mean()),
        median_degree=float(np.median(deg)),
        isolated_vertices=int(np.count_nonzero(deg == 0)),
        gini=_gini(deg),
    )
