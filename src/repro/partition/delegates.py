"""Degree separation: delegate selection and edge-category census (paper §III-A).

The single most important tuning parameter in the paper is the degree
threshold ``TH``: vertices with out-degree **greater than** ``TH`` become
*delegates* (replicated on every GPU), the rest remain *normal* vertices
(owned by exactly one GPU).  This module provides:

* :func:`separate_by_degree` — compute the delegate set and the dense
  delegate-id numbering for a given threshold;
* :class:`EdgeCategoryCensus` / :func:`census_for_thresholds` — the fraction
  of nn / nd / dn / dd edges and of delegate vertices as a function of ``TH``,
  which is exactly what Figures 5 and 12 plot;
* :func:`suggest_threshold` — the paper's tuning rule (keep the number of
  delegates at the order of ``n/p``, at most ``4 n/p``, and the nn-edge
  fraction small), which reproduces the suggested-threshold curve of Figure 7.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.graph.degree import out_degrees
from repro.graph.edgelist import EdgeList

__all__ = [
    "DegreeSeparation",
    "EdgeCategoryCensus",
    "separate_by_degree",
    "census_for_thresholds",
    "suggest_threshold",
    "threshold_candidates",
]


@dataclass
class DegreeSeparation:
    """Result of splitting the vertex set by out-degree.

    Attributes
    ----------
    threshold:
        The degree threshold ``TH`` used.
    degrees:
        Out-degree of every vertex (length ``n``).
    is_delegate:
        Boolean array of length ``n``; ``True`` for delegates.
    delegate_vertices:
        Global vertex ids of the delegates, ascending; the position of a
        vertex in this array is its *delegate id* (the paper renumbers
        delegates densely, e.g. vertex 7 becomes delegate 0 in Figure 2).
    delegate_id_of:
        Length-``n`` array mapping a global vertex id to its delegate id, or
        ``-1`` for normal vertices.
    """

    threshold: int
    degrees: np.ndarray
    is_delegate: np.ndarray
    delegate_vertices: np.ndarray
    delegate_id_of: np.ndarray

    @property
    def num_vertices(self) -> int:
        """Total number of vertices ``n``."""
        return int(self.degrees.size)

    @property
    def num_delegates(self) -> int:
        """Number of delegates ``d``."""
        return int(self.delegate_vertices.size)

    @property
    def delegate_fraction(self) -> float:
        """``d / n`` (0 for the empty graph)."""
        return self.num_delegates / self.num_vertices if self.num_vertices else 0.0

    def delegate_degrees(self) -> np.ndarray:
        """Out-degrees of the delegates, indexed by delegate id."""
        return self.degrees[self.delegate_vertices]


def separate_by_degree(edges: EdgeList, threshold: int) -> DegreeSeparation:
    """Split the vertices of ``edges`` into delegates and normal vertices.

    Vertices with out-degree strictly greater than ``threshold`` become
    delegates (matching the paper's definition: "vertices with out-degree
    larger than TH").
    """
    if threshold < 0:
        raise ValueError(f"threshold must be non-negative, got {threshold}")
    degrees = out_degrees(edges)
    is_delegate = degrees > threshold
    delegate_vertices = np.flatnonzero(is_delegate).astype(np.int64)
    delegate_id_of = np.full(edges.num_vertices, -1, dtype=np.int64)
    delegate_id_of[delegate_vertices] = np.arange(delegate_vertices.size, dtype=np.int64)
    return DegreeSeparation(
        threshold=int(threshold),
        degrees=degrees,
        is_delegate=is_delegate,
        delegate_vertices=delegate_vertices,
        delegate_id_of=delegate_id_of,
    )


@dataclass(frozen=True)
class EdgeCategoryCensus:
    """Counts of the four edge categories for one threshold value.

    The four categories follow the paper's notation: ``nn`` (normal→normal),
    ``nd`` (normal→delegate), ``dn`` (delegate→normal) and ``dd``
    (delegate→delegate).  For a symmetric graph ``nd == dn``.
    """

    threshold: int
    num_vertices: int
    num_edges: int
    num_delegates: int
    nn_edges: int
    nd_edges: int
    dn_edges: int
    dd_edges: int

    @property
    def delegate_percentage(self) -> float:
        """Delegates as a percentage of all vertices."""
        return 100.0 * self.num_delegates / self.num_vertices if self.num_vertices else 0.0

    @property
    def nn_percentage(self) -> float:
        """nn edges as a percentage of all edges."""
        return 100.0 * self.nn_edges / self.num_edges if self.num_edges else 0.0

    @property
    def nd_dn_percentage(self) -> float:
        """nd + dn edges as a percentage of all edges."""
        return 100.0 * (self.nd_edges + self.dn_edges) / self.num_edges if self.num_edges else 0.0

    @property
    def dd_percentage(self) -> float:
        """dd edges as a percentage of all edges."""
        return 100.0 * self.dd_edges / self.num_edges if self.num_edges else 0.0

    def as_dict(self) -> dict:
        """Flat dictionary form (used by the Figure 5 / 12 benchmark tables)."""
        return {
            "threshold": self.threshold,
            "delegates_pct": self.delegate_percentage,
            "nn_pct": self.nn_percentage,
            "nd_dn_pct": self.nd_dn_percentage,
            "dd_pct": self.dd_percentage,
            "num_delegates": self.num_delegates,
            "nn_edges": self.nn_edges,
            "nd_edges": self.nd_edges,
            "dn_edges": self.dn_edges,
            "dd_edges": self.dd_edges,
        }


def census_edge_categories(edges: EdgeList, separation: DegreeSeparation) -> EdgeCategoryCensus:
    """Count the nn/nd/dn/dd edges for an existing separation."""
    src_is_d = separation.is_delegate[edges.src]
    dst_is_d = separation.is_delegate[edges.dst]
    dd = int(np.count_nonzero(src_is_d & dst_is_d))
    dn = int(np.count_nonzero(src_is_d & ~dst_is_d))
    nd = int(np.count_nonzero(~src_is_d & dst_is_d))
    nn = int(np.count_nonzero(~src_is_d & ~dst_is_d))
    return EdgeCategoryCensus(
        threshold=separation.threshold,
        num_vertices=edges.num_vertices,
        num_edges=edges.num_edges,
        num_delegates=separation.num_delegates,
        nn_edges=nn,
        nd_edges=nd,
        dn_edges=dn,
        dd_edges=dd,
    )


def census_for_thresholds(
    edges: EdgeList, thresholds: Sequence[int] | Iterable[int]
) -> list[EdgeCategoryCensus]:
    """Edge-category census over a sweep of thresholds (Figures 5 and 12)."""
    degrees = out_degrees(edges)
    results: list[EdgeCategoryCensus] = []
    for th in thresholds:
        sep = DegreeSeparation(
            threshold=int(th),
            degrees=degrees,
            is_delegate=degrees > th,
            delegate_vertices=np.flatnonzero(degrees > th).astype(np.int64),
            delegate_id_of=np.zeros(0, dtype=np.int64),  # not needed for the census
        )
        # Recompute the id map lazily only if a caller needs it; the census does not.
        results.append(census_edge_categories(edges, sep))
    return results


def threshold_candidates(max_degree: int) -> np.ndarray:
    """Power-of-two threshold candidates up to the maximum degree (as in Fig. 5)."""
    if max_degree < 1:
        return np.asarray([1], dtype=np.int64)
    top = int(np.ceil(np.log2(max_degree))) + 1
    return (2 ** np.arange(0, top + 1)).astype(np.int64)


def suggest_threshold(
    edges: EdgeList,
    num_gpus: int,
    max_delegate_factor: float = 4.0,
    max_nn_fraction: float = 0.10,
    candidates: Sequence[int] | None = None,
) -> int:
    """Suggest a degree threshold following the paper's tuning rule (§VI-B).

    The paper's guidance: keep the number of delegates ``d`` on the order of
    the per-GPU vertex count ``n/p`` (under ``4 n/p`` in practice) and keep
    the nn-edge percentage small (under ~10%).  Among all candidate
    thresholds satisfying both constraints we return the smallest (more
    delegates means less nn communication, which the paper prefers as long as
    the delegate masks stay cheap); if no candidate satisfies both, the one
    with the smallest constraint violation is returned.

    Parameters
    ----------
    edges:
        Prepared (symmetric) edge list.
    num_gpus:
        ``p``, the number of GPUs the graph will be partitioned over.
    max_delegate_factor:
        The ``4`` in ``d <= 4 n/p``.
    max_nn_fraction:
        Upper bound on the fraction of nn edges (0.10 in the paper).
    candidates:
        Candidate thresholds to consider; defaults to powers of two up to the
        maximum degree.
    """
    if num_gpus < 1:
        raise ValueError("num_gpus must be >= 1")
    degrees = out_degrees(edges)
    max_deg = int(degrees.max()) if degrees.size else 0
    cands = (
        np.asarray(sorted(set(int(c) for c in candidates)), dtype=np.int64)
        if candidates is not None
        else threshold_candidates(max_deg)
    )
    n = edges.num_vertices
    m = edges.num_edges
    delegate_budget = max_delegate_factor * n / num_gpus

    best_th: int | None = None
    best_violation = np.inf
    for th in cands:
        sep_mask = degrees > th
        d = int(np.count_nonzero(sep_mask))
        nn = int(np.count_nonzero(~sep_mask[edges.src] & ~sep_mask[edges.dst])) if m else 0
        nn_frac = nn / m if m else 0.0
        ok_d = d <= delegate_budget
        ok_nn = nn_frac <= max_nn_fraction
        if ok_d and ok_nn:
            return int(th)
        violation = max(0.0, (d - delegate_budget) / max(delegate_budget, 1.0)) + max(
            0.0, (nn_frac - max_nn_fraction) / max(max_nn_fraction, 1e-12)
        )
        if violation < best_violation:
            best_violation = violation
            best_th = int(th)
    if best_th is None:
        raise ValueError("no threshold candidates provided")
    return best_th
