"""Per-GPU subgraph construction (paper §III-B/C and Figure 2).

After degree separation and edge distribution, each GPU holds four CSR
subgraphs:

====  =======================  ============================  =================
name  rows (sources)           columns (destinations)        column id space
====  =======================  ============================  =================
nn    local normal vertices    normal vertices anywhere      **global** 64-bit
nd    local normal vertices    delegates (replicated)        delegate id 32-bit
dn    delegates (replicated)   local normal vertices         local slot 32-bit
dd    delegates (replicated)   delegates (replicated)        delegate id 32-bit
====  =======================  ============================  =================

Local normal vertices are addressed by their *local slot* ``v // p`` (see
:class:`repro.partition.layout.ClusterLayout`), so all bounded id spaces fit
comfortably in 32 bits — the property that gives the paper its memory savings
(Table I).

For direction optimization each GPU also keeps:

* the **source list of the nd subgraph** (local normal vertices with at least
  one edge to a delegate) — these are the only possible destinations of dn
  edges, so a backward-pull dn visit iterates over exactly this list;
* **source masks for the dd and dn subgraphs** (delegates with at least one
  dd / dn edge) — a backward-pull dd or nd visit iterates over unvisited
  delegates restricted to the corresponding mask.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.graph.csr import CSRGraph
from repro.graph.edgelist import EdgeList
from repro.partition.delegates import (
    DegreeSeparation,
    EdgeCategoryCensus,
    census_edge_categories,
    separate_by_degree,
)
from repro.partition.distributor import EDGE_CATEGORIES, EdgeAssignment, distribute_edges
from repro.partition.layout import ClusterLayout

__all__ = ["GPUPartition", "PartitionedGraph", "build_partitions"]


@dataclass
class GPUPartition:
    """All graph data resident on one virtual GPU.

    Attributes
    ----------
    flat_gpu:
        Flat GPU index in ``[0, p)``.
    num_local:
        Number of local vertex slots on this GPU (``ceil``-divided share of
        the vertex universe; slots whose global vertex is a delegate exist but
        carry no nn/nd rows with edges and are never marked through the
        normal-vertex path).
    local_is_normal:
        Boolean per local slot: whether the slot's global vertex is a normal
        vertex (as opposed to a delegate whose slot is unused).
    nn, nd, dn, dd:
        The four CSR subgraphs described in the module docstring.
    nd_source_list:
        Local slots with at least one nd edge (sorted).
    dn_source_mask, dd_source_mask:
        Boolean arrays over delegate ids: delegates with at least one dn / dd
        edge on this GPU.
    """

    flat_gpu: int
    layout: ClusterLayout
    num_local: int
    num_delegates: int
    local_is_normal: np.ndarray
    nn: CSRGraph
    nd: CSRGraph
    dn: CSRGraph
    dd: CSRGraph
    nd_source_list: np.ndarray = field(default_factory=lambda: np.zeros(0, dtype=np.int64))
    dn_source_mask: np.ndarray = field(default_factory=lambda: np.zeros(0, dtype=bool))
    dd_source_mask: np.ndarray = field(default_factory=lambda: np.zeros(0, dtype=bool))

    # ------------------------------------------------------------------ #
    # Identity / conversion helpers
    # ------------------------------------------------------------------ #
    def global_ids_of_locals(self, local_slots: np.ndarray) -> np.ndarray:
        """Map local slots on this GPU to global vertex ids."""
        return self.layout.global_from_local(self.flat_gpu, local_slots)

    def owned_global_ids(self) -> np.ndarray:
        """Global ids of every local slot, in slot order."""
        return self.layout.global_from_local(
            self.flat_gpu, np.arange(self.num_local, dtype=np.int64)
        )

    @property
    def num_edges(self) -> int:
        """Total edges stored on this GPU across the four subgraphs."""
        return self.nn.num_edges + self.nd.num_edges + self.dn.num_edges + self.dd.num_edges

    def subgraph_nbytes(self) -> dict[str, int]:
        """Byte sizes of the four stored subgraphs (Table I accounting)."""
        return {
            "nn": self.nn.nbytes(),
            "nd": self.nd.nbytes(),
            "dn": self.dn.nbytes(),
            "dd": self.dd.nbytes(),
        }

    def nbytes(self) -> int:
        """Total bytes of the four subgraphs on this GPU."""
        return int(sum(self.subgraph_nbytes().values()))


@dataclass
class PartitionedGraph:
    """A graph partitioned across a virtual GPU cluster with degree separation.

    This is the object handed to :class:`repro.core.engine.DistributedBFS`.
    """

    layout: ClusterLayout
    threshold: int
    num_vertices: int
    num_directed_edges: int
    separation: DegreeSeparation
    census: EdgeCategoryCensus
    gpus: list[GPUPartition]
    #: Backing storage of the subgraph arrays: ``"memory"`` (plain ndarrays),
    #: ``"mmap"`` (views into a store's ``graph.bin``) or ``"compressed"``
    #: (mmap views with varint nn/nd columns).  See :mod:`repro.storage`.
    storage: str = "memory"
    #: Store directory for mmap/compressed graphs, ``None`` for memory.
    storage_path: str | None = None

    # ------------------------------------------------------------------ #
    # Convenience accessors
    # ------------------------------------------------------------------ #
    @property
    def num_gpus(self) -> int:
        """Number of GPUs the graph is partitioned over."""
        return self.layout.num_gpus

    @property
    def is_weighted(self) -> bool:
        """``True`` when the partitioned subgraphs carry per-edge weights."""
        return bool(self.gpus) and self.gpus[0].nn.edge_weights is not None

    @property
    def num_delegates(self) -> int:
        """Number of delegate vertices ``d``."""
        return self.separation.num_delegates

    @property
    def delegate_vertices(self) -> np.ndarray:
        """Global vertex ids of the delegates, indexed by delegate id."""
        return self.separation.delegate_vertices

    def delegate_id_of_vertex(self, vertices: np.ndarray | int) -> np.ndarray:
        """Delegate id of each given global vertex (-1 for normal vertices)."""
        return self.separation.delegate_id_of[np.asarray(vertices, dtype=np.int64)]

    def owner_of_vertex(self, vertices: np.ndarray | int) -> np.ndarray:
        """Flat GPU index owning each given global vertex id."""
        return self.layout.flat_gpu_of(vertices)

    def total_stored_edges(self) -> int:
        """Sum of edges stored across all GPUs (equals the input edge count)."""
        return int(sum(g.num_edges for g in self.gpus))

    def total_nbytes(self) -> int:
        """Total graph storage across the cluster in bytes."""
        return int(sum(g.nbytes() for g in self.gpus))

    def edges_per_gpu(self) -> np.ndarray:
        """Stored edge count per GPU."""
        return np.asarray([g.num_edges for g in self.gpus], dtype=np.int64)


def _build_gpu_partition(
    flat_gpu: int,
    layout: ClusterLayout,
    edges: EdgeList,
    separation: DegreeSeparation,
    assignment: EdgeAssignment,
) -> GPUPartition:
    """Construct the four subgraphs for one GPU from the global assignment."""
    n = edges.num_vertices
    d = separation.num_delegates
    num_local = layout.num_local_vertices(flat_gpu, n)
    owned_globals = layout.owned_vertices(flat_gpu, n)
    local_is_normal = ~separation.is_delegate[owned_globals] if num_local else np.zeros(0, dtype=bool)

    mine = assignment.owner == flat_gpu
    cat = assignment.category
    src, dst, wts = edges.src, edges.dst, edges.weights
    p = layout.num_gpus

    def pick(code: int) -> tuple[np.ndarray, np.ndarray, np.ndarray | None]:
        sel = mine & (cat == code)
        return src[sel], dst[sel], (wts[sel] if wts is not None else None)

    # nn: local slot -> global normal id
    nn_s, nn_d, nn_w = pick(EDGE_CATEGORIES["nn"])
    nn = CSRGraph.from_edges(
        nn_s // p, nn_d, num_rows=num_local, num_cols=n, column_dtype=np.int64,
        weights=nn_w,
    )
    # nd: local slot -> delegate id
    nd_s, nd_d, nd_w = pick(EDGE_CATEGORIES["nd"])
    nd = CSRGraph.from_edges(
        nd_s // p,
        separation.delegate_id_of[nd_d],
        num_rows=num_local,
        num_cols=max(d, 1) if d else 0,
        column_dtype=np.int32,
        weights=nd_w,
    ) if d else CSRGraph.empty(num_local, 0, column_dtype=np.int32)
    # dn: delegate id -> local slot
    dn_s, dn_d, dn_w = pick(EDGE_CATEGORIES["dn"])
    dn = CSRGraph.from_edges(
        separation.delegate_id_of[dn_s],
        dn_d // p,
        num_rows=d,
        num_cols=max(num_local, 1) if num_local else 0,
        column_dtype=np.int32,
        weights=dn_w,
    ) if d else CSRGraph.empty(0, num_local, column_dtype=np.int32)
    # dd: delegate id -> delegate id
    dd_s, dd_d, dd_w = pick(EDGE_CATEGORIES["dd"])
    dd = CSRGraph.from_edges(
        separation.delegate_id_of[dd_s],
        separation.delegate_id_of[dd_d],
        num_rows=d,
        num_cols=max(d, 1) if d else 0,
        column_dtype=np.int32,
        weights=dd_w,
    ) if d else CSRGraph.empty(0, 0, column_dtype=np.int32)

    nd_source_list = np.flatnonzero(nd.out_degrees() > 0).astype(np.int64)
    dn_source_mask = (dn.out_degrees() > 0) if d else np.zeros(0, dtype=bool)
    dd_source_mask = (dd.out_degrees() > 0) if d else np.zeros(0, dtype=bool)

    return GPUPartition(
        flat_gpu=flat_gpu,
        layout=layout,
        num_local=num_local,
        num_delegates=d,
        local_is_normal=local_is_normal,
        nn=nn,
        nd=nd,
        dn=dn,
        dd=dd,
        nd_source_list=nd_source_list,
        dn_source_mask=dn_source_mask,
        dd_source_mask=dd_source_mask,
    )


def build_partitions(
    edges: EdgeList,
    layout: ClusterLayout,
    threshold: int,
    separation: DegreeSeparation | None = None,
) -> PartitionedGraph:
    """Partition a prepared graph across the virtual cluster.

    Parameters
    ----------
    edges:
        Prepared (symmetric, deduplicated) edge list.  Symmetry is what makes
        the nd/dn/dd subgraphs locally symmetric and DOBFS correct without a
        global traversal direction; the function does not enforce it, but
        :class:`repro.core.engine.DistributedBFS` assumes it when DO is on.
    layout:
        Cluster geometry (``prank``, ``pgpu``).
    threshold:
        Degree threshold ``TH``.
    separation:
        Optional precomputed degree separation (must match ``threshold``).

    Returns
    -------
    PartitionedGraph
    """
    if separation is None:
        separation = separate_by_degree(edges, threshold)
    elif separation.threshold != threshold:
        raise ValueError(
            f"provided separation used TH={separation.threshold}, expected {threshold}"
        )
    assignment = distribute_edges(edges, separation, layout)
    census = census_edge_categories(edges, separation)
    gpus = [
        _build_gpu_partition(g, layout, edges, separation, assignment)
        for g in range(layout.num_gpus)
    ]
    return PartitionedGraph(
        layout=layout,
        threshold=int(threshold),
        num_vertices=edges.num_vertices,
        num_directed_edges=edges.num_edges,
        separation=separation,
        census=census,
        gpus=gpus,
    )
