"""Cluster layout and vertex ownership arithmetic.

The paper distributes vertices (and through them, edges) with two nested
modular functions (Algorithm 1):

* ``P(v) = v mod prank`` — which MPI rank owns vertex ``v``;
* ``G(v) = (v / prank) mod pgpu`` — which GPU within that rank.

With ``p = prank * pgpu`` GPUs total, the vertices owned by a given
(rank, gpu) pair are exactly ``{v : v ≡ rank + prank*gpu (mod p)}``, so the
*local index* of a vertex on its owner is simply ``v // p``.  This property is
what makes the distributor "simple: the location of an edge can be easily
computed from its index locally without table lookup or remote query", and it
is also what bounds the local id range so 32-bit indices suffice.

:class:`ClusterLayout` encapsulates that arithmetic, plus the flat-GPU-id
convention used throughout the library (``flat = rank * pgpu + gpu``, i.e.
node-major) and the paper's ``nodes × ranks-per-node × gpus-per-rank``
hardware notation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["ClusterLayout"]


@dataclass(frozen=True)
class ClusterLayout:
    """Geometry of the (virtual) GPU cluster.

    Parameters
    ----------
    num_ranks:
        ``prank`` — number of MPI ranks.
    gpus_per_rank:
        ``pgpu`` — GPUs per MPI rank.
    num_nodes:
        Number of physical nodes, used only for reporting in the paper's
        ``nodes × ranks × gpus`` notation; defaults to ``num_ranks`` (one rank
        per node, the common configuration in the paper).
    """

    num_ranks: int
    gpus_per_rank: int
    num_nodes: int | None = None

    def __post_init__(self) -> None:
        if self.num_ranks < 1:
            raise ValueError(f"num_ranks must be >= 1, got {self.num_ranks}")
        if self.gpus_per_rank < 1:
            raise ValueError(f"gpus_per_rank must be >= 1, got {self.gpus_per_rank}")
        if self.num_nodes is not None:
            if self.num_nodes < 1:
                raise ValueError("num_nodes must be >= 1")
            if self.num_ranks % self.num_nodes != 0:
                raise ValueError(
                    f"num_ranks={self.num_ranks} must be divisible by num_nodes={self.num_nodes}"
                )

    # ------------------------------------------------------------------ #
    # Shape
    # ------------------------------------------------------------------ #
    @property
    def num_gpus(self) -> int:
        """``p = prank * pgpu`` — total number of GPUs."""
        return self.num_ranks * self.gpus_per_rank

    @property
    def nodes(self) -> int:
        """Number of nodes (defaults to one rank per node)."""
        return self.num_nodes if self.num_nodes is not None else self.num_ranks

    @property
    def ranks_per_node(self) -> int:
        """MPI ranks per node."""
        return self.num_ranks // self.nodes

    def notation(self) -> str:
        """The paper's ``nodes × ranks-per-node × gpus-per-rank`` string."""
        return f"{self.nodes}x{self.ranks_per_node}x{self.gpus_per_rank}"

    @classmethod
    def from_notation(cls, text: str) -> "ClusterLayout":
        """Parse a ``AxBxC`` hardware string (e.g. ``"4x2x2"``)."""
        parts = text.lower().replace("×", "x").split("x")
        if len(parts) != 3:
            raise ValueError(f"expected 'nodes x ranks x gpus', got {text!r}")
        nodes, ranks_per_node, gpus = (int(p) for p in parts)
        return cls(
            num_ranks=nodes * ranks_per_node,
            gpus_per_rank=gpus,
            num_nodes=nodes,
        )

    # ------------------------------------------------------------------ #
    # Ownership arithmetic (Algorithm 1's P and G)
    # ------------------------------------------------------------------ #
    def rank_of(self, vertices: np.ndarray | int) -> np.ndarray:
        """``P(v) = v mod prank``."""
        return np.asarray(vertices, dtype=np.int64) % self.num_ranks

    def gpu_of(self, vertices: np.ndarray | int) -> np.ndarray:
        """``G(v) = (v / prank) mod pgpu``."""
        return (np.asarray(vertices, dtype=np.int64) // self.num_ranks) % self.gpus_per_rank

    def flat_gpu_of(self, vertices: np.ndarray | int) -> np.ndarray:
        """Flat GPU index ``rank * pgpu + gpu`` of each vertex's owner."""
        v = np.asarray(vertices, dtype=np.int64)
        return (v % self.num_ranks) * self.gpus_per_rank + (v // self.num_ranks) % self.gpus_per_rank

    def local_index_of(self, vertices: np.ndarray | int) -> np.ndarray:
        """Local (per-owner) index of each vertex: ``v // p``."""
        return np.asarray(vertices, dtype=np.int64) // self.num_gpus

    def rank_gpu_of_flat(self, flat_gpu: int) -> tuple[int, int]:
        """Decompose a flat GPU index into (rank, gpu-within-rank)."""
        if not 0 <= flat_gpu < self.num_gpus:
            raise ValueError(f"flat GPU index {flat_gpu} out of range [0, {self.num_gpus})")
        return flat_gpu // self.gpus_per_rank, flat_gpu % self.gpus_per_rank

    def vertex_offset_of_flat(self, flat_gpu: int) -> int:
        """Smallest global vertex id owned by this GPU: ``rank + prank * gpu``."""
        rank, gpu = self.rank_gpu_of_flat(flat_gpu)
        return rank + self.num_ranks * gpu

    def global_from_local(self, flat_gpu: int, local: np.ndarray | int) -> np.ndarray:
        """Map local indices on ``flat_gpu`` back to global vertex ids."""
        offset = self.vertex_offset_of_flat(flat_gpu)
        return np.asarray(local, dtype=np.int64) * self.num_gpus + offset

    def num_local_vertices(self, flat_gpu: int, num_vertices: int) -> int:
        """Number of global vertex ids owned by ``flat_gpu`` for an n-vertex graph."""
        offset = self.vertex_offset_of_flat(flat_gpu)
        if offset >= num_vertices:
            return 0
        return (num_vertices - offset + self.num_gpus - 1) // self.num_gpus

    def max_local_vertices(self, num_vertices: int) -> int:
        """Largest per-GPU local vertex count (``ceil(n / p)``)."""
        return (num_vertices + self.num_gpus - 1) // self.num_gpus

    def owned_vertices(self, flat_gpu: int, num_vertices: int) -> np.ndarray:
        """All global vertex ids owned by ``flat_gpu``, in local-index order."""
        offset = self.vertex_offset_of_flat(flat_gpu)
        return np.arange(offset, num_vertices, self.num_gpus, dtype=np.int64)
