"""Memory-usage model for the partitioned representation (paper Table I).

The paper's Table I gives the per-subgraph storage in bytes:

======  ====================  ======================
graph   row offsets           column indices
======  ====================  ======================
nn      ``n/p * 4``           ``|Enn|/p * 8``
nd      ``n/p * 4``           ``|End|/p * 4``
dn      ``d * 4``             ``|Edn|/p * 4``
dd      ``d * 4``             ``|Edd|/p * 4``
Total   ``8n + 8dp``          ``4m + 4|Enn|``
======  ====================  ======================

(The totals are summed over all ``p`` GPUs.)  With a suitable threshold the
paper reports this is about one third of the conventional 16-byte edge-list
format (``16m`` bytes) and a little more than half of an undistributed CSR
(``8n + 8m`` bytes).

:func:`memory_usage` evaluates both the analytic model (from the edge census)
and the *actual* byte counts of a built :class:`PartitionedGraph`, so the
Table I benchmark can report model vs measured side by side.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.partition.delegates import EdgeCategoryCensus
from repro.partition.subgraphs import PartitionedGraph

__all__ = ["MemoryModel", "memory_usage", "analytic_memory_model"]


@dataclass(frozen=True)
class MemoryModel:
    """Byte counts for one partitioning configuration.

    All totals are summed over the whole cluster.
    """

    num_vertices: int
    num_directed_edges: int
    num_delegates: int
    num_gpus: int
    partitioned_bytes: int
    edge_list_bytes: int
    plain_csr_bytes: int

    @property
    def vs_edge_list(self) -> float:
        """Partitioned size as a fraction of the 16-byte edge-list format."""
        return self.partitioned_bytes / self.edge_list_bytes if self.edge_list_bytes else 0.0

    @property
    def vs_plain_csr(self) -> float:
        """Partitioned size as a fraction of an undistributed 64-bit CSR."""
        return self.partitioned_bytes / self.plain_csr_bytes if self.plain_csr_bytes else 0.0

    @property
    def per_gpu_bytes(self) -> float:
        """Average partitioned bytes per GPU."""
        return self.partitioned_bytes / self.num_gpus if self.num_gpus else 0.0

    def as_dict(self) -> dict:
        """Flat dictionary for tabular reporting."""
        return {
            "num_vertices": self.num_vertices,
            "num_directed_edges": self.num_directed_edges,
            "num_delegates": self.num_delegates,
            "num_gpus": self.num_gpus,
            "partitioned_bytes": self.partitioned_bytes,
            "edge_list_bytes": self.edge_list_bytes,
            "plain_csr_bytes": self.plain_csr_bytes,
            "vs_edge_list": self.vs_edge_list,
            "vs_plain_csr": self.vs_plain_csr,
        }


def analytic_memory_model(census: EdgeCategoryCensus, num_gpus: int) -> MemoryModel:
    """Evaluate Table I's formulas from an edge-category census.

    Following the paper: per GPU the nn and nd subgraphs keep ``n/p * 4`` bytes
    of row offsets each, the dn and dd subgraphs keep ``d * 4`` bytes each;
    column indices cost 8 bytes per nn edge and 4 bytes per nd/dn/dd edge.
    Cluster-wide this comes to ``8n + 8dp + 4m + 4|Enn|`` bytes.
    """
    if num_gpus < 1:
        raise ValueError("num_gpus must be >= 1")
    n = census.num_vertices
    m = census.num_edges
    d = census.num_delegates
    partitioned = 8 * n + 8 * d * num_gpus + 4 * m + 4 * census.nn_edges
    return MemoryModel(
        num_vertices=n,
        num_directed_edges=m,
        num_delegates=d,
        num_gpus=num_gpus,
        partitioned_bytes=int(partitioned),
        edge_list_bytes=16 * m,
        plain_csr_bytes=8 * n + 8 * m,
    )


def memory_usage(partitioned: PartitionedGraph) -> tuple[MemoryModel, MemoryModel]:
    """Return (analytic, measured) memory models for a built partitioning.

    The *analytic* entry evaluates Table I's formulas; the *measured* entry
    sums the actual NumPy buffer sizes of every stored subgraph.  The two
    agree up to the per-GPU rounding of ``n/p`` and the +1 entry each CSR row
    offset array carries.
    """
    analytic = analytic_memory_model(partitioned.census, partitioned.num_gpus)
    measured = MemoryModel(
        num_vertices=partitioned.num_vertices,
        num_directed_edges=partitioned.num_directed_edges,
        num_delegates=partitioned.num_delegates,
        num_gpus=partitioned.num_gpus,
        partitioned_bytes=partitioned.total_nbytes(),
        edge_list_bytes=16 * partitioned.num_directed_edges,
        plain_csr_bytes=8 * partitioned.num_vertices + 8 * partitioned.num_directed_edges,
    )
    return analytic, measured
