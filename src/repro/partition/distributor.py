"""Algorithm 1: the edge distributor (paper §III-B).

Every edge of the prepared graph is assigned to exactly one GPU and one of the
four edge categories.  The rules, verbatim from Algorithm 1:

1. if the source ``u`` is normal, the edge goes to ``u``'s owner
   (``P(u), G(u)``);
2. else if the destination ``v`` is normal, the edge goes to ``v``'s owner;
3. else (both delegates) the edge goes to the owner slot computed from the
   endpoint with the *smaller* out-degree; ties broken by the smaller vertex
   id.

The consequences the paper highlights (and which the test suite verifies):

* **Simplicity** — ownership needs only modular arithmetic.
* **Symmetry** — for a symmetric input graph, every non-nn edge lands on the
  same GPU as its reverse edge, so the nd/dn/dd subgraphs on each GPU are
  locally symmetric, which is what allows per-subgraph direction optimization
  without a global traversal direction.
* **Bounded size** — destination ids of nd/dn/dd edges are bounded by ``d``
  or ``n/p``, so 32-bit local indices suffice.
* **Balance** — the number of edges per GPU is close to uniform.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.edgelist import EdgeList
from repro.partition.delegates import DegreeSeparation
from repro.partition.layout import ClusterLayout

__all__ = ["EdgeAssignment", "distribute_edges", "EDGE_CATEGORIES"]

#: Category codes stored in :attr:`EdgeAssignment.category`.
EDGE_CATEGORIES = {"nn": 0, "nd": 1, "dn": 2, "dd": 3}


@dataclass
class EdgeAssignment:
    """Output of the edge distributor.

    Attributes
    ----------
    owner:
        Flat GPU index assigned to each edge (length ``m``).
    category:
        Edge category code for each edge (see :data:`EDGE_CATEGORIES`).
    layout:
        The cluster layout the assignment was computed for.
    """

    owner: np.ndarray
    category: np.ndarray
    layout: ClusterLayout

    def edges_per_gpu(self) -> np.ndarray:
        """Number of edges assigned to each GPU (length ``p``)."""
        return np.bincount(self.owner, minlength=self.layout.num_gpus).astype(np.int64)

    def category_counts(self) -> dict[str, int]:
        """Total number of edges in each category across all GPUs."""
        counts = np.bincount(self.category, minlength=4)
        return {name: int(counts[code]) for name, code in EDGE_CATEGORIES.items()}

    def imbalance(self) -> float:
        """Max-over-mean edge-count imbalance across GPUs (1.0 = perfectly balanced)."""
        per_gpu = self.edges_per_gpu()
        mean = per_gpu.mean() if per_gpu.size else 0.0
        if mean == 0:
            return 1.0
        return float(per_gpu.max() / mean)


def distribute_edges(
    edges: EdgeList,
    separation: DegreeSeparation,
    layout: ClusterLayout,
) -> EdgeAssignment:
    """Run Algorithm 1 over all edges at once (fully vectorized).

    Parameters
    ----------
    edges:
        Prepared edge list (the distributor itself does not require symmetry,
        but the locality guarantees the paper relies on only hold for
        symmetric inputs).
    separation:
        Degree separation computed by
        :func:`repro.partition.delegates.separate_by_degree` on the same edge
        list.
    layout:
        Cluster geometry.

    Returns
    -------
    EdgeAssignment
        Owner GPU and category for every edge, in the input edge order.
    """
    if separation.num_vertices != edges.num_vertices:
        raise ValueError(
            "separation was computed for a different graph "
            f"({separation.num_vertices} vertices vs {edges.num_vertices})"
        )
    src, dst = edges.src, edges.dst
    deg = separation.degrees
    src_is_d = separation.is_delegate[src]
    dst_is_d = separation.is_delegate[dst]

    category = np.empty(edges.num_edges, dtype=np.int8)
    category[~src_is_d & ~dst_is_d] = EDGE_CATEGORIES["nn"]
    category[~src_is_d & dst_is_d] = EDGE_CATEGORIES["nd"]
    category[src_is_d & ~dst_is_d] = EDGE_CATEGORIES["dn"]
    category[src_is_d & dst_is_d] = EDGE_CATEGORIES["dd"]

    # Decide, per edge, which endpoint's hash location hosts the edge.
    # Rule 1/2: normal source wins; otherwise normal destination.
    # Rule 3 (dd): endpoint with the smaller out-degree; ties -> smaller id.
    use_src = ~src_is_d
    both_d = src_is_d & dst_is_d
    if np.any(both_d):
        du = deg[src[both_d]]
        dv = deg[dst[both_d]]
        u = src[both_d]
        v = dst[both_d]
        pick_src = (du < dv) | ((du == dv) & (u <= v))
        use_src_dd = np.zeros(edges.num_edges, dtype=bool)
        use_src_dd[np.flatnonzero(both_d)[pick_src]] = True
        use_src = use_src | use_src_dd

    anchor = np.where(use_src, src, dst)
    owner = layout.flat_gpu_of(anchor)
    return EdgeAssignment(owner=owner.astype(np.int64), category=category, layout=layout)
