"""Degree separation and edge distribution (paper §III).

This package turns a prepared (symmetric, hash-relabeled) edge list into the
per-GPU data structures the BFS engine traverses:

``delegates``
    Selection of delegate vertices by out-degree threshold ``TH``, the
    threshold-suggestion rule of Figure 7, and the edge-category census used
    by Figures 5 and 12.
``layout``
    The modular vertex-to-GPU layout (``P(v) = v mod prank``,
    ``G(v) = (v / prank) mod pgpu``) and global/local id conversion.
``distributor``
    Algorithm 1: assignment of every edge to exactly one GPU and one of the
    four categories (nn, nd, dn, dd).
``subgraphs``
    Construction of the four per-GPU CSR subgraphs with 32-bit local ids,
    source lists and source masks for direction optimization.
``memory``
    The Table-I memory model and comparisons against conventional edge-list
    and CSR storage.
``partition_1d`` / ``partition_2d``
    Conventional 1D and 2D partitioners used by the baseline distributed BFS
    implementations of §II-B.
"""

from repro.partition.delegates import (
    DegreeSeparation,
    EdgeCategoryCensus,
    census_for_thresholds,
    separate_by_degree,
    suggest_threshold,
)
from repro.partition.distributor import EdgeAssignment, distribute_edges
from repro.partition.layout import ClusterLayout
from repro.partition.memory import MemoryModel, memory_usage
from repro.partition.partition_1d import OneDPartition, partition_1d
from repro.partition.partition_2d import TwoDPartition, partition_2d
from repro.partition.subgraphs import GPUPartition, PartitionedGraph, build_partitions

__all__ = [
    "DegreeSeparation",
    "EdgeCategoryCensus",
    "separate_by_degree",
    "suggest_threshold",
    "census_for_thresholds",
    "ClusterLayout",
    "EdgeAssignment",
    "distribute_edges",
    "GPUPartition",
    "PartitionedGraph",
    "build_partitions",
    "MemoryModel",
    "memory_usage",
    "OneDPartition",
    "partition_1d",
    "TwoDPartition",
    "partition_2d",
]
