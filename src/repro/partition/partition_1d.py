"""Conventional 1D (vertex-block) partitioning — baseline for §II-B.

In a 1D partitioning every GPU owns a contiguous-by-hash set of vertices and
*all* of their outgoing edges.  Running direction-optimized BFS on top of a 1D
partition "forces broadcasting the newly visited vertices to all the peers
that host their neighbors" (paper §II-B), which is exactly the scaling problem
degree separation avoids.  We implement it both as a working distributed BFS
substrate (:class:`OneDPartition` is consumed by
:class:`repro.baselines.bfs_1d.OneDBFS`) and as the communication-cost
baseline in :mod:`repro.perfmodel.costs`.

Vertex ownership uses the same modular rule as the main partitioner
(``owner(v) = flat_gpu_of(v)``) so comparisons isolate the effect of degree
separation rather than of a different hashing scheme.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.csr import CSRGraph
from repro.graph.edgelist import EdgeList
from repro.partition.layout import ClusterLayout

__all__ = ["OneDPartition", "partition_1d"]


@dataclass
class OneDPartition:
    """A 1D-partitioned graph: one CSR of owned rows per GPU.

    Attributes
    ----------
    layout:
        Cluster geometry.
    num_vertices:
        Global vertex count.
    adjacency:
        Per GPU, a CSR whose rows are the GPU's local slots (``v // p``) and
        whose columns are *global* destination ids.
    """

    layout: ClusterLayout
    num_vertices: int
    num_directed_edges: int
    adjacency: list[CSRGraph]

    @property
    def num_gpus(self) -> int:
        """Number of GPUs."""
        return self.layout.num_gpus

    def edges_per_gpu(self) -> np.ndarray:
        """Stored edge count per GPU."""
        return np.asarray([csr.num_edges for csr in self.adjacency], dtype=np.int64)

    def total_nbytes(self) -> int:
        """Total storage (64-bit CSR on every GPU)."""
        return int(sum(csr.nbytes() for csr in self.adjacency))


def partition_1d(edges: EdgeList, layout: ClusterLayout) -> OneDPartition:
    """Partition a prepared edge list 1D by source-vertex owner."""
    owner = layout.flat_gpu_of(edges.src)
    p = layout.num_gpus
    adjacency: list[CSRGraph] = []
    for g in range(p):
        sel = owner == g
        num_local = layout.num_local_vertices(g, edges.num_vertices)
        csr = CSRGraph.from_edges(
            edges.src[sel] // p,
            edges.dst[sel],
            num_rows=num_local,
            num_cols=edges.num_vertices,
            column_dtype=np.int64,
        )
        adjacency.append(csr)
    return OneDPartition(
        layout=layout,
        num_vertices=edges.num_vertices,
        num_directed_edges=edges.num_edges,
        adjacency=adjacency,
    )
