"""Conventional 2D (edge-block) partitioning — baseline for §II-B.

In the 2D scheme of Vastenhouw & Bisseling (and most Graph500 CPU-cluster
entries), the ``p`` processors are arranged in a ``√p × √p`` grid and the
adjacency matrix is partitioned into blocks: processor ``(i, j)`` stores the
edges whose source falls in row-block ``i`` and destination in column-block
``j``.  A BFS level then takes two communication hops: a reduction along each
processor *row* (to combine partial frontiers) and a broadcast along each
*column* (to propagate the combined frontier).

The paper argues (§II-B) that this scheme's communication volume grows as
``√p`` under weak scaling, and that backward-pull DOBFS additionally wastes
work because each unvisited vertex searches for a parent in each of the ``√p``
row blocks independently.  We build a working 2D substrate here so the
baseline BFS in :mod:`repro.baselines.bfs_2d` can traverse it and expose both
effects, and so the cost model in :mod:`repro.perfmodel.costs` has a concrete
object to describe.

Vertices are mapped to row/column blocks by the same modular hash as the main
partitioner, using ``v mod r`` for the block index within a grid of ``r``
rows, so block sizes are balanced without a lookup table.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.graph.csr import CSRGraph
from repro.graph.edgelist import EdgeList
from repro.partition.layout import ClusterLayout

__all__ = ["TwoDPartition", "partition_2d", "grid_shape_for"]


def grid_shape_for(num_gpus: int) -> tuple[int, int]:
    """Pick the most-square ``rows x cols`` grid with ``rows * cols == num_gpus``.

    The paper's analysis assumes a square grid (``√p × √p``); for GPU counts
    that are not perfect squares we use the most-square factorisation, which
    is what practical 2D implementations do.
    """
    if num_gpus < 1:
        raise ValueError("num_gpus must be >= 1")
    best = (1, num_gpus)
    for rows in range(1, int(math.isqrt(num_gpus)) + 1):
        if num_gpus % rows == 0:
            best = (rows, num_gpus // rows)
    return best


@dataclass
class TwoDPartition:
    """A 2D-partitioned graph over a ``grid_rows x grid_cols`` processor grid.

    Attributes
    ----------
    blocks:
        ``blocks[i][j]`` is the CSR block for grid position ``(i, j)``.  Rows
        of the block are the *local* indices of source vertices in row-block
        ``i`` (``v // grid_rows``), columns are local indices of destination
        vertices in column-block ``j`` (``v // grid_cols``).
    """

    layout: ClusterLayout
    grid_rows: int
    grid_cols: int
    num_vertices: int
    num_directed_edges: int
    blocks: list[list[CSRGraph]]

    @property
    def num_gpus(self) -> int:
        """Total number of grid positions (= GPUs)."""
        return self.grid_rows * self.grid_cols

    def row_block_of(self, vertices: np.ndarray | int) -> np.ndarray:
        """Row-block index of each vertex (``v mod grid_rows``)."""
        return np.asarray(vertices, dtype=np.int64) % self.grid_rows

    def col_block_of(self, vertices: np.ndarray | int) -> np.ndarray:
        """Column-block index of each vertex (``v mod grid_cols``)."""
        return np.asarray(vertices, dtype=np.int64) % self.grid_cols

    def row_local_of(self, vertices: np.ndarray | int) -> np.ndarray:
        """Local index of each vertex within its row block."""
        return np.asarray(vertices, dtype=np.int64) // self.grid_rows

    def col_local_of(self, vertices: np.ndarray | int) -> np.ndarray:
        """Local index of each vertex within its column block."""
        return np.asarray(vertices, dtype=np.int64) // self.grid_cols

    def num_row_local(self, row_block: int) -> int:
        """Number of vertices in a given row block."""
        if row_block >= self.num_vertices:
            return 0
        return (self.num_vertices - row_block + self.grid_rows - 1) // self.grid_rows

    def num_col_local(self, col_block: int) -> int:
        """Number of vertices in a given column block."""
        if col_block >= self.num_vertices:
            return 0
        return (self.num_vertices - col_block + self.grid_cols - 1) // self.grid_cols

    def edges_per_gpu(self) -> np.ndarray:
        """Stored edge count per grid position (flattened row-major)."""
        return np.asarray(
            [self.blocks[i][j].num_edges for i in range(self.grid_rows) for j in range(self.grid_cols)],
            dtype=np.int64,
        )

    def total_nbytes(self) -> int:
        """Total storage across all blocks."""
        return int(
            sum(
                self.blocks[i][j].nbytes()
                for i in range(self.grid_rows)
                for j in range(self.grid_cols)
            )
        )


def partition_2d(edges: EdgeList, layout: ClusterLayout) -> TwoDPartition:
    """Partition a prepared edge list over a 2D processor grid."""
    rows, cols = grid_shape_for(layout.num_gpus)
    n = edges.num_vertices
    src_block = edges.src % rows
    dst_block = edges.dst % cols
    blocks: list[list[CSRGraph]] = []
    for i in range(rows):
        row_blocks: list[CSRGraph] = []
        num_row_local = (n - i + rows - 1) // rows if i < n else 0
        for j in range(cols):
            num_col_local = (n - j + cols - 1) // cols if j < n else 0
            sel = (src_block == i) & (dst_block == j)
            csr = CSRGraph.from_edges(
                edges.src[sel] // rows,
                edges.dst[sel] // cols,
                num_rows=num_row_local,
                num_cols=max(num_col_local, 1) if num_col_local else 0,
                column_dtype=np.int64,
            )
            row_blocks.append(csr)
        blocks.append(row_blocks)
    return TwoDPartition(
        layout=layout,
        grid_rows=rows,
        grid_cols=cols,
        num_vertices=n,
        num_directed_edges=edges.num_edges,
        blocks=blocks,
    )
