"""Deterministic fixed-point PageRank over the partitioned engine.

Rank mass travels as ``int64`` fixed-point integers (one rank unit =
``SCALE``), and every fold along the way — the per-edge contribution
scatter, the exchange payload combine, the delegate all-reduce — is an
integer add.  Integer addition is associative and commutative, so the
answer is bit-identical regardless of which backend, kernel provider or
storage tier ran the sweep, and regardless of arrival order.  The
damping multiply is exact too: :func:`damped` splits the operand with a
``divmod`` so no intermediate exceeds ``2**54``.

Two modes share the machinery:

* ``"fixed"`` — the textbook power sweep, run for exactly
  ``iterations`` rounds.  Every vertex with out-edges contributes
  ``damped(rank) // outdeg`` along each edge; dangling mass is spread
  uniformly.
* ``"push"`` — residual push: vertices accumulate rank monotonically
  and only push when their un-propagated residual crosses ``eps``;
  the sweep stops when no vertex is active.  Work scales with how much
  mass still moves instead of with the vertex count.

PageRank runs on weighted and unweighted graphs alike — the paper's
contribution model is degree-based, so edge weights are ignored.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.comm import Communicator
from repro.core.results import IterationRecord
from repro.exec.plan import GPUPlan, SuperStepPlan, VisitSpec
from repro.obs.tracer import get_tracer
from repro.utils.timing import TimingBreakdown, now_s
from repro.weighted.results import PageRankResult

__all__ = ["PageRank", "SCALE", "DAMP_DEN", "damped"]

#: Fixed-point scale of one rank unit (a probability of 1.0).
SCALE = 1 << 34
#: Denominator of the damping fraction (damping is rounded to 1/2^20).
DAMP_DEN = 1 << 20


def damped(x, damp_num: int):
    """``x * damping`` exactly, in integers, overflow-free.

    ``x`` is at most ``SCALE`` (2^34) and ``damp_num`` at most ``DAMP_DEN``
    (2^20); splitting ``x`` with a divmod keeps every intermediate below
    ``2^54``.
    """
    q, rem = np.divmod(x, DAMP_DEN)
    return q * damp_num + (rem * damp_num) // DAMP_DEN


class PageRank:
    """PageRank driver: self-scheduled contribution sweeps.

    The engine dispatches to :meth:`drive`, which owns the outer loop:
    each round it plans one contribution super-step (a ``contrib_visit``
    task per subgraph kernel), hands it to the engine's backend, folds
    the received mass with integer adds, and updates the rank vector.

    Parameters
    ----------
    damping:
        Teleport damping factor in (0, 1); rounded to a multiple of
        ``1 / 2^20`` so the arithmetic stays integral.
    mode:
        ``"fixed"`` (power sweeps) or ``"push"`` (residual push).
    iterations:
        Sweep count for ``"fixed"`` mode.
    eps:
        Residual threshold for ``"push"`` mode, as a fraction of total
        rank mass: a vertex pushes when its un-propagated residual is at
        least ``eps * SCALE``.
    """

    name = "pagerank"
    needs_weights = False
    max_levels = None

    def __init__(
        self,
        damping: float = 0.85,
        mode: str = "fixed",
        iterations: int = 20,
        eps: float = 1e-7,
    ) -> None:
        damping = float(damping)
        if not 0.0 < damping < 1.0:
            raise ValueError(f"damping must be in (0, 1), got {damping!r}")
        if mode not in ("fixed", "push"):
            raise ValueError(f"mode must be 'fixed' or 'push', got {mode!r}")
        iterations = int(iterations)
        if iterations < 1:
            raise ValueError(f"iterations must be >= 1, got {iterations!r}")
        eps = float(eps)
        if not eps > 0:
            raise ValueError(f"eps must be positive, got {eps!r}")
        self.damping = damping
        self.mode = mode
        self.iterations = iterations
        self.eps = eps
        self.damp_num = int(round(damping * DAMP_DEN))

    # ------------------------------------------------------------------ #
    # Driver
    # ------------------------------------------------------------------ #
    def drive(self, engine, init=None, overlay=None) -> PageRankResult:
        if init is not None:
            raise ValueError("pagerank does not support seeded init / repair")
        graph = engine.graph
        opts = engine.options
        n = graph.num_vertices
        p = graph.num_gpus
        d = graph.num_delegates
        dv = graph.delegate_vertices

        overlay_live = overlay is not None and not overlay.empty
        if overlay_live:
            o_src, o_dst, _ = overlay.edges()
        else:
            o_src = o_dst = np.zeros(0, dtype=np.int64)

        # Global out-degrees.  nn/nd rows are a GPU's owned (normal) slots
        # and live only on the owner; dn/dd rows are delegate ids and each
        # GPU holds a disjoint slice of a delegate's out-edges, so summing
        # over GPUs recovers the full degree.  Overlay edges count too.
        outdeg = np.zeros(n, dtype=np.int64)
        for g in range(p):
            deg = engine._degrees[g]
            owned = graph.gpus[g].owned_global_ids()
            outdeg[owned] += deg["nn"] + deg["nd"]
            if d:
                outdeg[dv] += deg["dn"] + deg["dd"]
        if o_src.size:
            np.add.at(outdeg, o_src, 1)
        nz = outdeg > 0

        teleport = np.int64((SCALE - int(damped(SCALE, self.damp_num))) // n)
        communicator = Communicator(engine.topology, engine.netmodel)

        records: list[IterationRecord] = []
        timing = TimingBreakdown()
        total_edges = 0
        wall = {"kernels": 0.0, "exchange": 0.0, "delegate_reduce": 0.0}
        run_started = now_s()

        if self.mode == "fixed":
            r = np.full(n, SCALE // n, dtype=np.int64)
            for sweep in range(1, self.iterations + 1):
                dr = damped(r, self.damp_num)
                contrib = np.zeros(n, dtype=np.int64)
                contrib[nz] = dr[nz] // outdeg[nz]
                dangling = int(dr[~nz].sum())
                recv, record = self._sweep(
                    engine, communicator, sweep, contrib, nz, o_src, o_dst, wall
                )
                r = teleport + recv + np.int64(dangling // n)
                self._account(record, records, timing)
                total_edges += record.total_edges_examined()
        else:
            eps_scaled = max(1, int(round(self.eps * SCALE)))
            r = np.full(n, teleport, dtype=np.int64)
            pushed = np.zeros(n, dtype=np.int64)
            sweep = 0
            while True:
                dr = damped(r, self.damp_num)
                want = np.where(nz, dr // np.maximum(outdeg, 1), dr)
                resid = want - pushed
                active = nz & (resid * outdeg >= eps_scaled)
                active_dangling = ~nz & (resid >= eps_scaled)
                if not active.any() and not active_dangling.any():
                    break
                sweep += 1
                if sweep > opts.max_iterations:
                    raise RuntimeError(
                        f"{self.name} exceeded max_iterations="
                        f"{opts.max_iterations}; eps may be too small for "
                        "the fixed-point resolution"
                    )
                contrib = np.where(active, resid, np.int64(0))
                dangling = int(resid[active_dangling].sum())
                recv, record = self._sweep(
                    engine, communicator, sweep, contrib, active, o_src, o_dst, wall
                )
                pushed[active] = want[active]
                pushed[active_dangling] = want[active_dangling]
                r = r + recv + np.int64(dangling // n)
                self._account(record, records, timing)
                total_edges += record.total_edges_examined()

        timing.iterations = len(records)
        wall["traversal"] = now_s() - run_started
        tracer = get_tracer()
        if tracer.enabled:
            tracer.record_span(
                "traversal", cat="engine", start=run_started,
                dur=wall["traversal"],
                args={"program": self.name, "iterations": len(records)},
            )
        base = {
            "iterations": len(records),
            "records": records,
            "timing": timing,
            "comm_stats": communicator.stats,
            "total_edges_examined": total_edges,
            "num_directed_edges": graph.num_directed_edges,
            "wall_s": wall,
        }
        return PageRankResult(
            damping=self.damping,
            mode=self.mode,
            scale=SCALE,
            ranks=r,
            **base,
        )

    @staticmethod
    def _account(record: IterationRecord, records: list, timing: TimingBreakdown):
        records.append(record)
        timing.computation += record.computation_s * 1e3
        timing.local_communication += record.local_communication_s * 1e3
        timing.remote_normal_exchange += record.remote_normal_exchange_s * 1e3
        timing.remote_delegate_reduce += record.remote_delegate_reduce_s * 1e3
        timing.elapsed_ms += record.elapsed_s * 1e3
        timing.per_iteration.append(record)

    # ------------------------------------------------------------------ #
    # One contribution super-step
    # ------------------------------------------------------------------ #
    def _sweep(
        self,
        engine,
        communicator: Communicator,
        level: int,
        contrib: np.ndarray,
        active: np.ndarray,
        o_src: np.ndarray,
        o_dst: np.ndarray,
        wall: dict,
    ) -> tuple[np.ndarray, IterationRecord]:
        """Scatter ``contrib`` along the active vertices' out-edges.

        Returns the per-vertex received mass (an exact integer sum over
        incoming edges, backend-invariant) and the step's counter record.
        """
        graph = engine.graph
        opts = engine.options
        netmodel = engine.netmodel
        p = graph.num_gpus
        d = graph.num_delegates
        dv = graph.delegate_vertices

        plan_started = now_s()
        gpu_plans: list[GPUPlan] = []
        base_comp = np.zeros(p, dtype=np.float64)
        active_total = 0
        active_delegates = int(np.count_nonzero(active[dv])) if d else 0
        for g in range(p):
            part = graph.gpus[g]
            deg = engine._degrees[g]
            owned = part.owned_global_ids()
            visits: list[VisitSpec] = []
            queued = 0
            for kernel in ("nn", "nd"):
                if kernel == "nd" and not d:
                    continue
                rows = np.flatnonzero((deg[kernel] > 0) & active[owned])
                if rows.size:
                    visits.append(
                        VisitSpec(
                            kernel,
                            kernel,
                            backward=False,
                            queue=rows,
                            keep_sources=False,
                            row_values=contrib[owned[rows]],
                        )
                    )
                    queued += int(rows.size)
            if d:
                for kernel in ("dn", "dd"):
                    if kernel == "dn" and not part.num_local:
                        continue
                    rows = np.flatnonzero((deg[kernel] > 0) & active[dv])
                    if rows.size:
                        visits.append(
                            VisitSpec(
                                kernel,
                                kernel,
                                backward=False,
                                queue=rows,
                                keep_sources=False,
                                row_values=contrib[dv[rows]],
                            )
                        )
                        queued += int(rows.size)
            base_comp[g] = netmodel.iteration_overhead() + netmodel.filter_time(
                2 * queued
            )
            active_total += queued
            gpu_plans.append(GPUPlan(gpu=g, visits=visits, normal_flags=None))

        def finalize(outputs: list) -> IterationRecord:
            return self._finalize_sweep(
                outputs,
                engine=engine,
                communicator=communicator,
                level=level,
                contrib=contrib,
                active=active,
                o_src=o_src,
                o_dst=o_dst,
                wall=wall,
                base_comp=base_comp,
                active_total=active_total,
                active_delegates=active_delegates,
                holder=holder,
            )

        holder: dict = {}
        plan = SuperStepPlan(
            level=level,
            batched=False,
            gpu_plans=gpu_plans,
            finalize=finalize,
            wall=wall,
            delegate_flags=np.zeros(d, dtype=bool),
            provider=engine.provider,
        )
        wall["kernels"] += now_s() - plan_started
        record = engine.backend.run_super_step(plan)
        tracer = get_tracer()
        if tracer.enabled:
            tracer.record_span(
                "super-step", cat="engine", start=plan_started,
                dur=now_s() - plan_started,
                args={"level": level, "program": self.name},
            )
        return holder["recv"], record

    def _finalize_sweep(
        self,
        outputs: list,
        engine,
        communicator: Communicator,
        level: int,
        contrib: np.ndarray,
        active: np.ndarray,
        o_src: np.ndarray,
        o_dst: np.ndarray,
        wall: dict,
        base_comp: np.ndarray,
        active_total: int,
        active_delegates: int,
        holder: dict,
    ) -> IterationRecord:
        graph = engine.graph
        opts = engine.options
        netmodel = engine.netmodel
        n = graph.num_vertices
        p = graph.num_gpus
        d = graph.num_delegates
        dv = graph.delegate_vertices

        local_accum = [
            np.zeros(graph.gpus[g].num_local, dtype=np.int64) for g in range(p)
        ]
        delegate_accum = [np.zeros(d, dtype=np.int64) for g in range(p)]
        nn_outboxes: list[np.ndarray] = []
        nn_payloads: list[np.ndarray] = []
        per_gpu_comp = base_comp.copy()
        edges_examined = {"nn": 0, "nd": 0, "dn": 0, "dd": 0}
        fold_started = now_s()

        empty_i64 = np.zeros(0, dtype=np.int64)
        for g in range(p):
            outs = outputs[g]
            out_nn = outs.get("nn")
            if out_nn is not None and out_nn.discovered.size:
                per_gpu_comp[g] += netmodel.traversal_time(
                    out_nn.edges_examined, backward=False
                )
                edges_examined["nn"] += out_nn.edges_examined
                nn_outboxes.append(out_nn.discovered)
                nn_payloads.append(out_nn.values)
            else:
                nn_outboxes.append(empty_i64)
                nn_payloads.append(empty_i64)
            out_dn = outs.get("dn")
            if out_dn is not None and out_dn.discovered.size:
                per_gpu_comp[g] += netmodel.traversal_time(
                    out_dn.edges_examined, backward=False
                )
                edges_examined["dn"] += out_dn.edges_examined
                np.add.at(local_accum[g], out_dn.discovered, out_dn.values)
            for kernel in ("nd", "dd"):
                out = outs.get(kernel)
                if out is not None and out.discovered.size:
                    per_gpu_comp[g] += netmodel.traversal_time(
                        out.edges_examined, backward=False
                    )
                    edges_examined[kernel] += out.edges_examined
                    np.add.at(delegate_accum[g], out.discovered, out.values)

        tracer = get_tracer()
        exchange_started = now_s()
        wall["kernels"] += exchange_started - fold_started
        if tracer.enabled:
            tracer.record_span(
                "fold", cat="engine", start=fold_started,
                dur=exchange_started - fold_started, args={"level": level},
            )
        exchange = communicator.exchange_normals(
            nn_outboxes,
            local_all2all=opts.local_all2all,
            uniquify=opts.uniquify,
            payloads=nn_payloads,
            payload_combine=np.add,
            payload_identity=np.int64(0),
        )
        for g in range(p):
            inbox = exchange.inboxes[g]
            if inbox.size:
                np.add.at(local_accum[g], inbox, exchange.payload_inboxes[g])

        reduce_started = now_s()
        wall["exchange"] += reduce_started - exchange_started
        if tracer.enabled:
            tracer.record_span(
                "nn-exchange", cat="engine", start=exchange_started,
                dur=reduce_started - exchange_started, args={"level": level},
            )
        reduce_local_s = 0.0
        reduce_global_s = 0.0
        merged = None
        delegate_reduce_needed = d > 0 and any(a.any() for a in delegate_accum)
        if delegate_reduce_needed:
            vreduce = communicator.allreduce_delegate_values(
                delegate_accum, combine=np.add, blocking=opts.blocking_reduce
            )
            merged = vreduce.merged
            reduce_local_s = vreduce.local_time_s
            reduce_global_s = vreduce.global_time_s
        reduce_done = now_s()
        wall["delegate_reduce"] += reduce_done - reduce_started
        if tracer.enabled:
            tracer.record_span(
                "delegate-reduce", cat="engine", start=reduce_started,
                dur=reduce_done - reduce_started, args={"level": level},
            )

        # Assemble the global received-mass vector.  Ownership is disjoint;
        # mass for delegate vertices arrives only through the nd/dd reduce.
        recv = np.zeros(n, dtype=np.int64)
        for g in range(p):
            recv[graph.gpus[g].owned_global_ids()] = local_accum[g]
        if merged is not None:
            recv[dv] += merged

        # Overlay edges (not yet compacted into the CSR) relax on the
        # coordinator so every backend sees the union graph.
        overlay_edges = 0
        if o_src.size:
            take = active[o_src]
            overlay_edges = int(np.count_nonzero(take))
            if overlay_edges:
                np.add.at(recv, o_dst[take], contrib[o_src[take]])
                per_gpu_comp[0] += netmodel.traversal_time(
                    overlay_edges, backward=False
                )
                edges_examined["overlay"] = overlay_edges
        holder["recv"] = recv

        computation_s = float(per_gpu_comp.max()) if p else 0.0
        local_comm_s = exchange.local_time_s + reduce_local_s
        remote_normal_s = exchange.remote_time_s
        remote_delegate_s = reduce_global_s
        comm_total = local_comm_s + remote_normal_s + remote_delegate_s
        overlap = opts.overlap_efficiency * min(computation_s, comm_total)
        elapsed_s = computation_s + comm_total - overlap

        return IterationRecord(
            iteration=level,
            normal_frontier_size=active_total,
            delegate_frontier_size=active_delegates,
            edges_examined=edges_examined,
            directions={"nd": 0, "dn": 0, "dd": 0},
            discovered=int(np.count_nonzero(recv)),
            delegate_reduce=delegate_reduce_needed,
            computation_s=computation_s,
            local_communication_s=local_comm_s,
            remote_normal_exchange_s=remote_normal_s,
            remote_delegate_reduce_s=remote_delegate_s,
            elapsed_s=elapsed_s,
        )
