"""repro.weighted — weighted traversals and the expanded program zoo.

Programs over the weighted CSR path (per-edge float64 weights threaded
through generators, partitioning, storage and the kernel providers):

* :class:`BellmanFordSSSP` / :class:`DeltaSteppingSSSP` — single-source
  shortest paths; the former is the per-edge relaxation baseline, the
  latter the bucketed delta-stepping schedule (Meyer & Sanders).
* :class:`PageRank` — deterministic fixed-point ranks; ``"fixed"``
  power sweeps or ``"push"`` residual propagation.
* :class:`ComponentsHooking` — min-label hooking + pointer jumping.
* :class:`TriangleCount` — exact rank-ordered triangle counting.

All programs run through ``engine.run(program)`` like the BFS family;
answers and workload counters are bit-identical across execution
backends, kernel providers and storage tiers.
"""

from repro.weighted.pagerank import PageRank
from repro.weighted.results import (
    HookingResult,
    PageRankResult,
    SSSPResult,
    TriangleCountResult,
)
from repro.weighted.sssp import BellmanFordSSSP, DeltaSteppingSSSP
from repro.weighted.zoo import ComponentsHooking, TriangleCount, edges_from_partitions

__all__ = [
    "BellmanFordSSSP",
    "DeltaSteppingSSSP",
    "PageRank",
    "ComponentsHooking",
    "TriangleCount",
    "edges_from_partitions",
    "SSSPResult",
    "PageRankResult",
    "HookingResult",
    "TriangleCountResult",
]
