"""Result containers of the weighted program zoo.

Weighted traversals keep the same counter/timing machinery as the BFS
family (:class:`repro.core.results.TraversalResult`), and add
answer-specific payloads:

* :class:`SSSPResult` — shortest-path distances, stored as the raw
  order-preserving ``int64`` bit patterns the engine folded (see
  :mod:`repro.weighted.sssp`), with a float view for consumers;
* :class:`PageRankResult` — fixed-point integer ranks, bit-identical
  across backends, providers and storage tiers, with a float view;
* :class:`HookingResult` — component labels from the hooking driver
  (same answer vocabulary as :class:`ComponentsResult`);
* :class:`TriangleCountResult` — global and per-vertex triangle counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import ClassVar

import numpy as np

from repro.core.results import ComponentsResult, TraversalResult
from repro.core.state import UNVISITED

__all__ = [
    "SSSPResult",
    "PageRankResult",
    "HookingResult",
    "TriangleCountResult",
]


@dataclass
class SSSPResult(TraversalResult):
    """Single-source shortest paths over non-negative ``float64`` weights.

    ``dist_bits`` holds the engine's native answer: the IEEE-754 bit
    pattern of each finite distance reinterpreted as ``int64``, with
    :data:`~repro.core.state.UNVISITED` (``-1``) marking unreached
    vertices.  Non-negative finite doubles order identically under their
    int64 bit view, so this array is what the minimum-folds operated on
    and is bit-comparable across every backend/provider/storage
    combination.  :attr:`distances` is the human-facing float view.
    """

    algorithm: ClassVar[str] = "sssp"

    source: int = 0
    #: Bucket width used by the delta-stepping driver; ``inf`` means the
    #: Bellman-Ford-style single-bucket schedule.
    delta: float = 0.0
    #: Raw int64 bit-view distances (``UNVISITED`` = unreached).
    dist_bits: np.ndarray = field(default_factory=lambda: np.zeros(0, dtype=np.int64))
    #: Bucket phases executed (delta-stepping only; equals iterations).
    phases: int = 0

    @property
    def distances(self) -> np.ndarray:
        """Float64 distances; unreached vertices hold ``inf``."""
        return np.where(
            self.dist_bits == UNVISITED, np.inf, self.dist_bits.view(np.float64)
        )

    @property
    def num_reached(self) -> int:
        """Number of vertices reached from the source (source included)."""
        return int(np.count_nonzero(self.dist_bits != UNVISITED))

    def summary(self) -> dict:
        base = super().summary()
        base.update(
            {
                "source": self.source,
                "reached": self.num_reached,
                "delta": self.delta,
            }
        )
        return base


@dataclass
class PageRankResult(TraversalResult):
    """PageRank in deterministic fixed-point arithmetic.

    ``ranks`` holds each vertex's rank scaled by :attr:`scale`
    (an exact integer — every fold is an integer add, so the answer is
    bit-identical regardless of execution order).  ``ranks_float``
    recovers the conventional probability-vector view.
    """

    algorithm: ClassVar[str] = "pagerank"

    damping: float = 0.85
    #: ``"fixed"`` (fixed sweep count) or ``"push"`` (residual push).
    mode: str = "fixed"
    #: Fixed-point scale: a rank of 1.0 is stored as ``scale``.
    scale: int = 1 << 34
    #: Per-vertex fixed-point ranks.
    ranks: np.ndarray = field(default_factory=lambda: np.zeros(0, dtype=np.int64))

    @property
    def ranks_float(self) -> np.ndarray:
        """Float64 view of the ranks (sums to ~1.0)."""
        return self.ranks.astype(np.float64) / float(self.scale)

    def top_vertices(self, k: int = 10) -> np.ndarray:
        """The ``k`` highest-ranked vertex ids, best first (ties by id)."""
        k = min(int(k), self.ranks.size)
        # Sort by (-rank, id): stable sort on id then stable sort on -rank.
        order = np.argsort(-self.ranks, kind="stable")
        return order[:k]

    def summary(self) -> dict:
        base = super().summary()
        base.update(
            {
                "damping": self.damping,
                "mode": self.mode,
                "rank_sum": float(self.ranks_float.sum()),
            }
        )
        return base


@dataclass
class HookingResult(ComponentsResult):
    """Component labels computed by the min-label hooking driver."""

    algorithm: ClassVar[str] = "components-hooking"

    #: Pointer-jumping passes executed across all rounds.
    jump_passes: int = 0

    def summary(self) -> dict:
        base = super().summary()
        base.update({"jump_passes": self.jump_passes})
        return base


@dataclass
class TriangleCountResult(TraversalResult):
    """Global and per-vertex triangle counts of the undirected graph."""

    algorithm: ClassVar[str] = "triangles"

    #: Total number of distinct triangles.
    triangles: int = 0
    #: Triangles incident to each vertex (each triangle counts once per corner).
    per_vertex: np.ndarray = field(default_factory=lambda: np.zeros(0, dtype=np.int64))

    @property
    def max_per_vertex(self) -> int:
        """Largest per-vertex triangle count."""
        return int(self.per_vertex.max()) if self.per_vertex.size else 0

    def summary(self) -> dict:
        base = super().summary()
        base.update(
            {
                "triangles": self.triangles,
                "max_per_vertex": self.max_per_vertex,
            }
        )
        return base
