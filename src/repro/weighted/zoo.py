"""Coordinator-driven analytics: hooking components and triangle counting.

Not every graph algorithm maps onto frontier super-steps.  The two
programs here reconstruct the global directed edge list from the
partitioned subgraphs once (:func:`edges_from_partitions` — the inverse
of partitioning, covering every kernel class and the compressed storage
tier) and run dense array passes on the coordinator:

* :class:`ComponentsHooking` — min-label hooking with pointer jumping,
  the classic O(m · log n) alternative to frontier label propagation;
  its labels are bit-identical to
  :class:`~repro.core.programs.ConnectedComponents` (both converge to
  the per-component minimum vertex id).
* :class:`TriangleCount` — exact global and per-vertex triangle counts
  via rank-ordered wedge checks, with bounded-memory chunking.

Both drivers synthesize the standard counter records so bench harnesses
and result plumbing treat them like any engine traversal, and both fold
a live overlay (not-yet-compacted insertions) into the edge list so
mutable graphs see the union graph.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.comm import Communicator
from repro.core.results import IterationRecord
from repro.utils.timing import TimingBreakdown, now_s
from repro.weighted.results import HookingResult, TriangleCountResult

__all__ = ["edges_from_partitions", "ComponentsHooking", "TriangleCount"]


def edges_from_partitions(
    graph, include_weights: bool = False
) -> tuple[np.ndarray, np.ndarray, np.ndarray | None]:
    """Reconstruct the global directed edge list from the partitioned graph.

    Walks every kernel CSR of every GPU — nn (local slots to global
    normals), nd (local slots to delegate ids), dn (delegate ids to local
    slots) and dd (delegate ids to delegate ids) — and maps rows and
    columns back to global vertex ids.  Compressed subgraphs are decoded
    row-block by row-block through their own ``decode_rows``.

    Returns ``(src, dst, weights)`` with ``weights`` ``None`` unless
    ``include_weights`` is set and the graph is weighted.
    """
    want_weights = include_weights and graph.is_weighted
    srcs: list[np.ndarray] = []
    dsts: list[np.ndarray] = []
    weights: list[np.ndarray] = []
    for g, part in enumerate(graph.gpus):
        for kind in ("nn", "nd", "dn", "dd"):
            csr = getattr(part, kind)
            if hasattr(csr, "decode_rows"):
                csr = csr.decode_rows(np.arange(csr.num_rows, dtype=np.int64))
            cols = np.asarray(csr.column_indices, dtype=np.int64)
            if cols.size == 0:
                continue
            rows = np.repeat(
                np.arange(csr.num_rows, dtype=np.int64), np.diff(csr.row_offsets)
            )
            if kind in ("nn", "nd"):
                src = part.global_ids_of_locals(rows)
            else:
                src = graph.delegate_vertices[rows]
            if kind == "nn":
                dst = cols
            elif kind == "dn":
                dst = part.global_ids_of_locals(cols)
            else:
                dst = graph.delegate_vertices[cols]
            srcs.append(np.asarray(src, dtype=np.int64))
            dsts.append(np.asarray(dst, dtype=np.int64))
            if want_weights:
                weights.append(np.asarray(csr.edge_weights, dtype=np.float64))
    if not srcs:
        empty = np.zeros(0, dtype=np.int64)
        return empty, empty.copy(), (np.zeros(0, dtype=np.float64) if want_weights else None)
    src = np.concatenate(srcs)
    dst = np.concatenate(dsts)
    w = np.concatenate(weights) if want_weights else None
    return src, dst, w


def _with_overlay(src, dst, overlay):
    if overlay is None or overlay.empty:
        return src, dst, 0
    o_src, o_dst, _ = overlay.edges()
    return (
        np.concatenate([src, o_src]),
        np.concatenate([dst, o_dst]),
        int(o_src.size),
    )


class ComponentsHooking:
    """Connected components by min-label hooking with pointer jumping.

    Every round hooks each edge's destination to the smaller of its own
    and its source's label (``labels[v] <= v`` always, so the labels form
    a pointer forest) and then pointer-jumps the forest flat.  Converges
    to the per-component minimum vertex id — the same answer as the
    frontier label-propagation program — in O(log n) rounds.
    """

    name = "components-hooking"
    needs_weights = False
    max_levels = None

    def drive(self, engine, init=None, overlay=None) -> HookingResult:
        if init is not None:
            raise ValueError("components-hooking does not support seeded init")
        graph = engine.graph
        netmodel = engine.netmodel
        opts = engine.options
        n = graph.num_vertices
        run_started = now_s()
        src, dst, _ = edges_from_partitions(graph)
        src, dst, _overlay_edges = _with_overlay(src, dst, overlay)
        m = int(src.size)

        communicator = Communicator(engine.topology, engine.netmodel)
        records: list[IterationRecord] = []
        timing = TimingBreakdown()
        total_edges = 0
        total_jumps = 0
        labels = np.arange(n, dtype=np.int64)
        level = 0
        while True:
            level += 1
            if level > opts.max_iterations:
                raise RuntimeError(
                    f"{self.name} exceeded max_iterations={opts.max_iterations}"
                )
            new = labels.copy()
            if m:
                np.minimum.at(new, dst, labels[src])
            jumps = 0
            while True:
                flat = new[new]
                if np.array_equal(flat, new):
                    break
                new = flat
                jumps += 1
            changed = int(np.count_nonzero(new != labels))
            examined = m + n * jumps
            comp = netmodel.iteration_overhead() + netmodel.traversal_time(
                examined, backward=False
            )
            records.append(
                IterationRecord(
                    iteration=level,
                    normal_frontier_size=changed,
                    delegate_frontier_size=0,
                    edges_examined={"hook": m, "jump": n * jumps},
                    directions={"nd": 0, "dn": 0, "dd": 0},
                    discovered=changed,
                    computation_s=comp,
                    elapsed_s=comp,
                )
            )
            total_edges += examined
            total_jumps += jumps
            timing.computation += comp * 1e3
            timing.elapsed_ms += comp * 1e3
            timing.per_iteration.append(records[-1])
            if changed == 0:
                break
            labels = new

        timing.iterations = len(records)
        wall = {"kernels": now_s() - run_started, "exchange": 0.0,
                "delegate_reduce": 0.0}
        wall["traversal"] = wall["kernels"]
        return HookingResult(
            labels=labels,
            jump_passes=total_jumps,
            iterations=len(records),
            records=records,
            timing=timing,
            comm_stats=communicator.stats,
            total_edges_examined=total_edges,
            num_directed_edges=graph.num_directed_edges,
            wall_s=wall,
        )


class TriangleCount:
    """Exact triangle counting by rank-ordered wedge checks.

    The undirected edges are oriented from low to high degree-rank (ties
    by vertex id), which bounds every DAG out-degree by O(sqrt(m)); each
    wedge ``a -> x, a -> y`` (rank(x) < rank(y)) closes a triangle iff
    the DAG edge ``x -> y`` exists.  Wedges are generated in bounded
    chunks (at most :attr:`chunk_pairs` pairs at a time) so memory stays
    flat on skewed graphs.
    """

    name = "triangles"
    needs_weights = False
    max_levels = None

    #: Wedge pairs expanded per chunk.
    chunk_pairs = 1 << 22

    def drive(self, engine, init=None, overlay=None) -> TriangleCountResult:
        if init is not None:
            raise ValueError("triangle counting does not support seeded init")
        graph = engine.graph
        netmodel = engine.netmodel
        n = graph.num_vertices
        run_started = now_s()
        src, dst, _ = edges_from_partitions(graph)
        src, dst, _overlay_edges = _with_overlay(src, dst, overlay)

        # Undirected u < v edges, deduplicated via packed keys.
        lo = np.minimum(src, dst)
        hi = np.maximum(src, dst)
        keep = lo != hi
        lo, hi = lo[keep], hi[keep]
        packed = np.unique(lo * np.int64(n) + hi)
        lo = packed // n
        hi = packed - lo * n

        # Degree rank: ascending (degree, id); the DAG points low -> high.
        deg = np.bincount(lo, minlength=n) + np.bincount(hi, minlength=n)
        order = np.lexsort((np.arange(n, dtype=np.int64), deg))
        rank = np.empty(n, dtype=np.int64)
        rank[order] = np.arange(n, dtype=np.int64)

        swap = rank[lo] > rank[hi]
        a = np.where(swap, hi, lo)
        b = np.where(swap, lo, hi)

        # DAG CSR over sources, neighbors sorted by rank within each row.
        sort = np.lexsort((rank[b], a))
        a, b = a[sort], b[sort]
        dag_keys = a * np.int64(n) + b  # sorted: a ascending, b-rank within a
        dag_keys_sorted = np.sort(dag_keys)
        dag_deg = np.bincount(a, minlength=n)
        dag_off = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(dag_deg, out=dag_off[1:])

        pairs_per_row = dag_deg * (dag_deg - 1) // 2
        cum_pairs = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(pairs_per_row, out=cum_pairs[1:])
        total_pairs = int(cum_pairs[-1])

        per_vertex = np.zeros(n, dtype=np.int64)
        triangles = 0
        start_row = 0
        while start_row < n:
            # Grow the chunk until it holds ~chunk_pairs wedge pairs.
            target = cum_pairs[start_row] + self.chunk_pairs
            end_row = int(np.searchsorted(cum_pairs, target, side="left"))
            end_row = max(end_row, start_row + 1)
            end_row = min(end_row, n)
            rows = np.arange(start_row, end_row, dtype=np.int64)
            lens = dag_deg[rows]
            active = rows[lens >= 2]
            start_row = end_row
            if active.size == 0:
                continue
            lens = dag_deg[active]
            starts = dag_off[active]
            # One entry per (row, i): the i-th neighbor paired with each
            # later neighbor of the same row.
            total_nb = int(lens.sum())
            i_idx = np.arange(total_nb, dtype=np.int64) - np.repeat(
                np.cumsum(lens) - lens, lens
            )
            reps = np.repeat(lens, lens) - 1 - i_idx
            nb_pos = np.repeat(starts, lens) + i_idx
            keep_i = reps > 0
            reps = reps[keep_i]
            nb_pos = nb_pos[keep_i]
            corner = np.repeat(np.repeat(active, lens)[keep_i], reps)
            x = np.repeat(b[nb_pos], reps)
            y_base = np.repeat(nb_pos + 1, reps)
            intra = np.arange(reps.sum(), dtype=np.int64) - np.repeat(
                np.cumsum(reps) - reps, reps
            )
            y = b[y_base + intra]
            # rank(x) < rank(y) by construction; the wedge closes iff the
            # DAG edge x -> y exists.
            wedge_keys = x * np.int64(n) + y
            pos = np.searchsorted(dag_keys_sorted, wedge_keys)
            found = (pos < dag_keys_sorted.size) & (
                dag_keys_sorted[np.minimum(pos, dag_keys_sorted.size - 1)]
                == wedge_keys
            )
            hits = int(np.count_nonzero(found))
            if hits:
                triangles += hits
                np.add.at(per_vertex, corner[found], 1)
                np.add.at(per_vertex, x[found], 1)
                np.add.at(per_vertex, y[found], 1)

        comp = netmodel.iteration_overhead() + netmodel.traversal_time(
            max(total_pairs, 1), backward=False
        )
        record = IterationRecord(
            iteration=1,
            normal_frontier_size=int(np.count_nonzero(dag_deg >= 2)),
            delegate_frontier_size=0,
            edges_examined={"wedges": total_pairs},
            directions={"nd": 0, "dn": 0, "dd": 0},
            discovered=triangles,
            computation_s=comp,
            elapsed_s=comp,
        )
        timing = TimingBreakdown()
        timing.computation = comp * 1e3
        timing.elapsed_ms = comp * 1e3
        timing.iterations = 1
        timing.per_iteration.append(record)
        communicator = Communicator(engine.topology, engine.netmodel)
        wall = {"kernels": now_s() - run_started, "exchange": 0.0,
                "delegate_reduce": 0.0}
        wall["traversal"] = wall["kernels"]
        return TriangleCountResult(
            triangles=triangles,
            per_vertex=per_vertex,
            iterations=1,
            records=[record],
            timing=timing,
            comm_stats=communicator.stats,
            total_edges_examined=total_pairs,
            num_directed_edges=graph.num_directed_edges,
            wall_s=wall,
        )
