"""Single-source shortest paths over non-negative float64 edge weights.

Two schedules share one relaxation program:

* :class:`BellmanFordSSSP` — a plain :class:`FrontierProgram` that
  relaxes every out-edge of the changed frontier each super-step until a
  fixpoint.  Simple, correct, and the workload baseline the bucketed
  schedule is measured against.
* :class:`DeltaSteppingSSSP` — the delta-stepping driver (Meyer &
  Sanders): vertices whose tentative distance changed wait in buckets of
  width ``delta``, and each phase relaxes only the lowest non-empty
  bucket.  Small buckets approach Dijkstra's settled order and stop
  re-relaxing long speculative paths; ``delta = inf`` collapses to the
  Bellman-Ford schedule.

**Distance encoding.**  Distances are float64, but the engine's fold
machinery (``np.minimum`` over int64, delegate all-reduce, exchange
payload combine) is int64.  The IEEE-754 bit patterns of non-negative
finite doubles order identically to their int64 bit views, so distances
travel as ``float64(...).view(int64)`` and every int64 minimum *is* the
exact float minimum — no epsilon, no rounding, bit-identical across
backends, providers and storage tiers.  ``UNVISITED`` (-1, the all-ones
pattern) compares below every valid pattern, so acceptance must check it
explicitly; see :meth:`BellmanFordSSSP.accept`.
"""

from __future__ import annotations

import math

import numpy as np

from repro.cluster.comm import Communicator
from repro.core.direction import DirectionState
from repro.core.programs.base import FrontierProgram, VisitContext, single_source_init
from repro.core.results import IterationRecord
from repro.core.state import UNVISITED, TraversalState
from repro.obs.tracer import get_tracer
from repro.utils.bitmask import Bitmask
from repro.utils.timing import TimingBreakdown, now_s
from repro.weighted.results import SSSPResult

__all__ = ["BellmanFordSSSP", "DeltaSteppingSSSP"]

#: Bit pattern of distance 0.0 — the source's initial value.
ZERO_BITS = np.int64(0)


def _require_weights(graph, name: str) -> None:
    if not graph.is_weighted:
        raise ValueError(
            f"program {name!r} needs edge weights but the graph has "
            "none; build it with weights (e.g. --weights on the generators)"
        )


class BellmanFordSSSP(FrontierProgram):
    """Label-correcting SSSP: relax all out-edges of changed vertices.

    Every super-step relaxes the full out-neighborhood of the vertices
    whose tentative distance improved last step, until nothing improves.
    The per-edge relaxation workload is what delta-stepping's bucketed
    schedule avoids — run both on the same graph to see the difference
    in ``total_edges_examined``.
    """

    name = "sssp-bellman-ford"
    payload_exchange = True
    delegate_channel = "values"
    direction_optimized_ok = False
    needs_weights = True

    def __init__(self, source: int, max_levels: int | None = None) -> None:
        self.source = int(source)
        self.max_levels = max_levels

    def init_state(self, graph):
        _require_weights(graph, self.name)
        return single_source_init(graph, self.source, ZERO_BITS)

    def visit_value(self, ctx: VisitContext) -> np.ndarray:
        if ctx.source_values is None:
            raise RuntimeError(
                "SSSP needs source distances; the engine must run it with "
                "payload support"
            )
        if ctx.edge_weights is None:
            # Kernels with no discoveries ship no weight array; there is
            # nothing to relax.
            if ctx.discovered is None or len(ctx.discovered) == 0:
                return np.zeros(0, dtype=np.int64)
            raise RuntimeError(
                "SSSP needs per-edge weights; the kernel ran without them"
            )
        return (ctx.source_values.view(np.float64) + ctx.edge_weights).view(np.int64)

    def accept(self, current: np.ndarray, proposed: np.ndarray) -> np.ndarray:
        # UNVISITED's all-ones pattern compares *below* every real distance
        # bit pattern, so a bare ``proposed < current`` would refuse every
        # first visit.
        return (current == UNVISITED) | (proposed < current)

    def make_result(self, values: np.ndarray, base: dict) -> SSSPResult:
        return SSSPResult(
            source=self.source,
            delta=math.inf,
            dist_bits=values,
            phases=base["iterations"],
            **base,
        )


class DeltaSteppingSSSP(BellmanFordSSSP):
    """Delta-stepping SSSP driver: bucketed label-correcting relaxation.

    Changed vertices are binned by ``floor(dist / delta)`` and each phase
    relaxes only the lowest non-empty bucket, so long speculative paths
    wait until shorter ones have settled.  The relaxation semantics (and
    hence the answer) are identical to :class:`BellmanFordSSSP`; only the
    schedule — which vertices relax when — changes.

    ``delta`` choices:

    * a positive float — explicit bucket width;
    * ``"auto"`` — ``1 / max(1, avg out-degree)``, the classic heuristic
      for unit-mean edge weights;
    * ``inf`` — one bucket, i.e. the Bellman-Ford schedule (useful as a
      self-check: the phase loop must then match the plain program).

    The driver owns the outer loop (the engine dispatches to
    :meth:`drive`), keeping one traversal state and one communicator
    across phases: per phase it sets the frontiers to the lowest-bucket
    subset of the pending set, runs one standard super-step through the
    engine's planner/backend, and returns changed vertices to the pending
    set.  Counters, modeled time and overlay semantics are exactly the
    per-super-step engine machinery.
    """

    name = "sssp-delta"

    def __init__(
        self,
        source: int,
        delta: float | str = "auto",
        max_levels: int | None = None,
    ) -> None:
        super().__init__(source, max_levels=max_levels)
        if isinstance(delta, str):
            if delta != "auto":
                raise ValueError(f"delta must be a positive number, 'auto' or inf, got {delta!r}")
            self.delta: float | str = "auto"
        else:
            delta = float(delta)
            if not delta > 0 or math.isnan(delta):
                raise ValueError(f"delta must be a positive number, 'auto' or inf, got {delta!r}")
            self.delta = delta

    def resolve_delta(self, graph) -> float:
        """The effective bucket width for ``graph``."""
        if self.delta == "auto":
            n = max(1, graph.num_vertices)
            avg_degree = graph.num_directed_edges / n
            return 1.0 / max(1.0, avg_degree)
        return float(self.delta)

    # ------------------------------------------------------------------ #
    # Driver
    # ------------------------------------------------------------------ #
    def drive(self, engine, init=None, overlay=None) -> SSSPResult:
        graph = engine.graph
        _require_weights(graph, self.name)
        opts = engine.options
        p = graph.num_gpus
        delta = self.resolve_delta(graph)

        if init is None:
            init = self.init_state(graph)
        state = TraversalState(
            graph=graph,
            normal_values=init.normal_values,
            delegate_values=init.delegate_values,
            delegate_visited=Bitmask.from_indices(
                graph.num_delegates,
                np.flatnonzero(init.delegate_values != UNVISITED),
            )
            if graph.num_delegates
            else Bitmask(0),
            normal_frontiers=init.normal_frontiers,
            delegate_frontier=init.delegate_frontier,
        )
        communicator = Communicator(engine.topology, engine.netmodel)
        # Weighted relaxation never pulls; DO stays off per subgraph.
        dir_states = {
            kind: [DirectionState(factors, enabled=False) for _ in range(p)]
            for kind, factors in (
                ("nd", opts.nd_factors),
                ("dn", opts.dn_factors),
                ("dd", opts.dd_factors),
            )
        }

        # Pending sets: vertices whose distance changed but whose out-edges
        # have not been relaxed since.  The engine's frontier arrays become
        # the per-phase *selection* from these.
        pending_normals = [
            np.zeros(gpu.num_local, dtype=bool) for gpu in graph.gpus
        ]
        pending_delegates = np.zeros(graph.num_delegates, dtype=bool)
        for g, frontier in enumerate(state.normal_frontiers):
            pending_normals[g][frontier] = True
        pending_delegates[state.delegate_frontier] = True

        records: list[IterationRecord] = []
        timing = TimingBreakdown()
        total_edges = 0
        level = 0
        wall = {"kernels": 0.0, "exchange": 0.0, "delegate_reduce": 0.0}
        backend = engine.backend
        overlay_live = overlay is not None and not overlay.empty
        tracer = get_tracer()
        run_started = now_s()

        while True:
            bucket = self._lowest_bucket(
                state, pending_normals, pending_delegates, delta
            )
            if bucket is None:
                break
            if self.max_levels is not None and level >= self.max_levels:
                break
            level += 1
            if level > opts.max_iterations:
                raise RuntimeError(
                    f"{self.name} exceeded max_iterations={opts.max_iterations}; "
                    "the graph or the engine state is inconsistent"
                )

            # Select the lowest-bucket subset of the pending set as this
            # phase's frontier and retire it (re-improved vertices re-enter
            # through the post-step frontiers below).
            for g in range(p):
                mask = pending_normals[g]
                slots = np.flatnonzero(mask)
                values = state.normal_values[g][slots]
                selected = slots[self._in_bucket(values, delta, bucket)]
                state.normal_frontiers[g] = selected
                mask[selected] = False
            ids = np.flatnonzero(pending_delegates)
            take = self._in_bucket(state.delegate_values[ids], delta, bucket)
            selected = ids[take]
            state.delegate_frontier = selected
            pending_delegates[selected] = False

            if overlay_live:
                pre_frontier = engine._capture_frontier(state)
            plan_started = now_s()
            plan = engine._plan_super_step(
                self, state, communicator, dir_states, level, wall
            )
            wall["kernels"] += now_s() - plan_started
            record = backend.run_super_step(plan)
            if overlay_live:
                relax_started = now_s()
                engine._overlay_relax(self, state, overlay, pre_frontier, level, record)
                relax_done = now_s()
                wall["kernels"] += relax_done - relax_started
                if tracer.enabled:
                    tracer.record_span(
                        "overlay-relax", cat="engine", start=relax_started,
                        dur=relax_done - relax_started, args={"level": level},
                    )
            if tracer.enabled:
                tracer.record_span(
                    "super-step", cat="engine", start=plan_started,
                    dur=now_s() - plan_started,
                    args={"level": level, "program": self.name, "bucket": int(bucket)},
                )

            # Everything the step changed is pending again — including
            # vertices from the bucket just relaxed whose distance improved
            # further (they need their out-edges re-relaxed).
            for g in range(p):
                pending_normals[g][state.normal_frontiers[g]] = True
            pending_delegates[state.delegate_frontier] = True

            records.append(record)
            total_edges += record.total_edges_examined()
            timing.computation += record.computation_s * 1e3
            timing.local_communication += record.local_communication_s * 1e3
            timing.remote_normal_exchange += record.remote_normal_exchange_s * 1e3
            timing.remote_delegate_reduce += record.remote_delegate_reduce_s * 1e3
            timing.elapsed_ms += record.elapsed_s * 1e3
            timing.per_iteration.append(record)

        timing.iterations = len(records)
        wall["traversal"] = now_s() - run_started
        if tracer.enabled:
            tracer.record_span(
                "traversal", cat="engine", start=run_started,
                dur=wall["traversal"],
                args={"program": self.name, "iterations": len(records)},
            )
        base = {
            "iterations": len(records),
            "records": records,
            "timing": timing,
            "comm_stats": communicator.stats,
            "total_edges_examined": total_edges,
            "num_directed_edges": graph.num_directed_edges,
            "wall_s": wall,
        }
        return SSSPResult(
            source=self.source,
            delta=delta,
            dist_bits=state.gather_values(),
            phases=len(records),
            **base,
        )

    # ------------------------------------------------------------------ #
    # Bucket arithmetic
    # ------------------------------------------------------------------ #
    def _lowest_bucket(
        self, state, pending_normals, pending_delegates, delta: float
    ):
        """The lowest bucket index holding a pending vertex, or None."""
        best = None
        for g, mask in enumerate(pending_normals):
            slots = np.flatnonzero(mask)
            if slots.size:
                values = state.normal_values[g][slots]
                low = self._bucket_of(values, delta).min()
                best = low if best is None else min(best, low)
        ids = np.flatnonzero(pending_delegates)
        if ids.size:
            low = self._bucket_of(state.delegate_values[ids], delta).min()
            best = low if best is None else min(best, low)
        return best

    @staticmethod
    def _bucket_of(bits: np.ndarray, delta: float) -> np.ndarray:
        """Bucket index of each distance bit pattern."""
        if math.isinf(delta):
            return np.zeros(bits.size, dtype=np.int64)
        return np.floor(bits.view(np.float64) / delta).astype(np.int64)

    @classmethod
    def _in_bucket(cls, bits: np.ndarray, delta: float, bucket) -> np.ndarray:
        if math.isinf(delta):
            return np.ones(bits.size, dtype=bool)
        return cls._bucket_of(bits, delta) == bucket

    def make_result(self, values: np.ndarray, base: dict) -> SSSPResult:  # pragma: no cover
        raise RuntimeError("DeltaSteppingSSSP builds its result in drive()")
