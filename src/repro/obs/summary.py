"""Aggregating a trace into per-span-kind totals (``repro trace summarize``).

A raw trace of a quick-suite run holds thousands of events; the summary
collapses them to one row per ``(category, name)`` — count, total/mean/max
duration — which answers the paper-level question ("where does super-step
time go: kernels, exchange, or delegate reduce?") without opening Perfetto.
"""

from __future__ import annotations

__all__ = ["summarize_events", "summary_lines"]


def summarize_events(events: list[dict]) -> dict:
    """Aggregate trace events per ``(cat, name)``.

    Returns ``{"events": total, "spans": {"cat/name": {count, total_ms,
    mean_ms, max_ms}}, "instants": {"cat/name": count}}``, with span keys
    sorted by descending total duration so the hottest rows lead.
    """
    spans: dict[str, dict] = {}
    instants: dict[str, int] = {}
    for event in events:
        key = f"{event.get('cat', '?')}/{event.get('name', '?')}"
        if event.get("ph") == "X":
            row = spans.setdefault(key, {"count": 0, "total_ms": 0.0, "max_ms": 0.0})
            dur_ms = float(event.get("dur", 0.0)) / 1e3
            row["count"] += 1
            row["total_ms"] += dur_ms
            if dur_ms > row["max_ms"]:
                row["max_ms"] = dur_ms
        else:
            instants[key] = instants.get(key, 0) + 1
    for row in spans.values():
        row["mean_ms"] = row["total_ms"] / row["count"] if row["count"] else 0.0
    ordered = dict(
        sorted(spans.items(), key=lambda item: (-item[1]["total_ms"], item[0]))
    )
    return {
        "events": len(events),
        "spans": ordered,
        "instants": dict(sorted(instants.items())),
    }


def summary_lines(summary: dict) -> list[str]:
    """Human-readable table for one :func:`summarize_events` result."""
    lines = [f"{summary['events']} events"]
    if summary["spans"]:
        lines.append(
            f"  {'span':<36} {'count':>7} {'total ms':>12} {'mean ms':>10} {'max ms':>10}"
        )
        for key, row in summary["spans"].items():
            lines.append(
                f"  {key:<36} {row['count']:>7} {row['total_ms']:>12.3f} "
                f"{row['mean_ms']:>10.3f} {row['max_ms']:>10.3f}"
            )
    if summary["instants"]:
        lines.append("  instant events:")
        for key, count in summary["instants"].items():
            lines.append(f"    {key:<34} {count:>7}")
    return lines
