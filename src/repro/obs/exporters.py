"""Trace exporters: JSONL, Chrome ``trace_event`` JSON, and loaders.

Tracer events are already stored in Chrome ``trace_event`` shape with
microsecond timestamps (see :mod:`repro.obs.tracer`), so exporting is pure
serialization:

``write_chrome_trace``
    The ``{"traceEvents": [...]}`` object format — drag the file into
    Perfetto or ``chrome://tracing`` and the engine's super-steps, the
    per-worker kernel spans and the serving tier's virtual-time requests
    render as nested tracks.
``write_jsonl``
    One event per line — greppable, streamable, diffable.
``write_trace``
    Picks the format from the path suffix (``.jsonl`` → JSONL, anything
    else → Chrome JSON), which is what the CLI's ``--trace PATH`` uses.
``load_trace``
    Reads either format back into an event list for ``trace summarize``.
"""

from __future__ import annotations

import json
from pathlib import Path

__all__ = ["chrome_trace", "write_chrome_trace", "write_jsonl", "write_trace", "load_trace"]


def chrome_trace(events: list[dict]) -> dict:
    """The Chrome ``trace_event`` object format for ``events``."""
    return {"traceEvents": list(events), "displayTimeUnit": "ms"}


def write_chrome_trace(events: list[dict], path: str | Path) -> Path:
    """Write ``events`` as Chrome ``trace_event`` JSON; returns the path."""
    path = Path(path)
    path.write_text(json.dumps(chrome_trace(events)) + "\n")
    return path


def write_jsonl(events: list[dict], path: str | Path) -> Path:
    """Write ``events`` one-JSON-object-per-line; returns the path."""
    path = Path(path)
    with path.open("w") as fh:
        for event in events:
            fh.write(json.dumps(event))
            fh.write("\n")
    return path


def write_trace(tracer, path: str | Path) -> Path:
    """Export a tracer's events, choosing the format from the suffix.

    ``.jsonl`` writes line-delimited events; every other suffix writes the
    Chrome ``trace_event`` object format.
    """
    path = Path(path)
    if path.suffix == ".jsonl":
        return write_jsonl(tracer.events, path)
    return write_chrome_trace(tracer.events, path)


def load_trace(path: str | Path) -> list[dict]:
    """Load a trace written by :func:`write_trace`, either format.

    Returns the flat event list; raises ``ValueError`` on files that are
    neither a Chrome ``trace_event`` object/array nor JSONL events.
    """
    path = Path(path)
    text = path.read_text()
    if path.suffix == ".jsonl":
        return [json.loads(line) for line in text.splitlines() if line.strip()]
    payload = json.loads(text)
    if isinstance(payload, dict) and isinstance(payload.get("traceEvents"), list):
        return payload["traceEvents"]
    if isinstance(payload, list):
        return payload
    raise ValueError(f"{path} is not a trace artifact (no traceEvents array)")
