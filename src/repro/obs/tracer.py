"""The span tracer: nested timing spans + structured events, off by default.

The tracer is the one clock-bearing object of :mod:`repro.obs`.  Every
instrumented layer (engine super-steps, backend kernel batches, storage
attaches, the serving tier) asks :func:`get_tracer` for the process-wide
tracer and records into it; when tracing is disabled — the default — that
call returns :data:`NULL_TRACER`, whose ``span``/``event`` methods are
allocation-free no-ops returning one shared singleton.  Hot paths therefore
guard per-item work behind ``tracer.enabled`` (a plain attribute read) and
pay nothing when tracing is off.

Two recording styles coexist:

``with tracer.span("fold", cat="engine"):``
    Context-manager spans read the tracer's *clock* (default
    :data:`repro.utils.timing.now_s`, i.e. ``time.perf_counter``) on entry
    and exit.
``tracer.record_span("request", cat="cluster", start=at_ms, dur=..., unit="ms")``
    Explicit-timestamp spans for call sites that already hold their own
    timings — the engine's finalize phases reuse the perf counters they
    charge wall time with, and the virtual-clock serving tier records spans
    in *virtual milliseconds* read from its event loop, keeping cluster
    traces bit-deterministic.

Events are normalized to Chrome ``trace_event`` microseconds at record time
(``ts``/``dur`` keys), so the exporters in :mod:`repro.obs.exporters` are
pure serialization.
"""

from __future__ import annotations

from repro.utils.timing import now_s

__all__ = [
    "NULL_TRACER",
    "NullTracer",
    "Tracer",
    "get_tracer",
    "set_tracer",
]

#: Microseconds per unit, for :meth:`Tracer.record_span`'s ``unit`` keyword.
_UNIT_US = {"s": 1e6, "ms": 1e3, "us": 1.0}


class _NullSpan:
    """The do-nothing span every disabled-tracer ``span()`` call returns.

    One instance exists per process; entering, exiting and annotating it
    allocate nothing, which is what makes instrumented kernels free when
    tracing is off.
    """

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def event(self, name: str, **args) -> None:
        """Discard an instant event."""

    def annotate(self, **args) -> None:
        """Discard span arguments."""


_NULL_SPAN = _NullSpan()


class _Span:
    """A live context-manager span; records one complete event on exit."""

    __slots__ = ("_tracer", "_name", "_cat", "_tid", "_args", "_start")

    def __init__(self, tracer: "Tracer", name: str, cat: str, tid: int, args: dict | None):
        self._tracer = tracer
        self._name = name
        self._cat = cat
        self._tid = tid
        self._args = args
        self._start = 0.0

    def __enter__(self) -> "_Span":
        self._start = self._tracer.clock()
        return self

    def __exit__(self, *exc) -> bool:
        end = self._tracer.clock()
        self._tracer.record_span(
            self._name,
            cat=self._cat,
            start=self._start,
            dur=end - self._start,
            tid=self._tid,
            unit=self._tracer.unit,
            args=self._args,
        )
        return False

    def event(self, name: str, **args) -> None:
        """Record an instant event inside this span (same category/track)."""
        self._tracer.event(name, cat=self._cat, tid=self._tid, **args)

    def annotate(self, **args) -> None:
        """Attach arguments to the span (merged into the completed event)."""
        if self._args is None:
            self._args = {}
        self._args.update(args)


class NullTracer:
    """The disabled tracer: every operation is a no-op.

    ``enabled`` is ``False`` so call sites can skip building argument
    dictionaries; ``span()`` always returns the one shared
    :class:`_NullSpan`, so the disabled hot path performs no allocation.
    """

    enabled = False
    #: The disabled tracer holds no events; exporters treat it as empty.
    events: list = []

    def span(self, name: str, cat: str = "repro", tid: int = 0, args: dict | None = None):
        """Return the shared no-op span."""
        return _NULL_SPAN

    def event(self, name: str, cat: str = "repro", tid: int = 0, **args) -> None:
        """Discard an instant event."""

    def record_span(
        self,
        name: str,
        cat: str = "repro",
        start: float = 0.0,
        dur: float = 0.0,
        tid: int = 0,
        unit: str = "s",
        args: dict | None = None,
    ) -> None:
        """Discard an explicit-timestamp span."""

    def instant(
        self,
        name: str,
        cat: str = "repro",
        ts: float = 0.0,
        tid: int = 0,
        unit: str = "s",
        args: dict | None = None,
    ) -> None:
        """Discard an explicit-timestamp instant event."""

    def clear(self) -> None:
        """Nothing to clear."""


#: The process-wide disabled tracer (also the identity tests' fixture).
NULL_TRACER = NullTracer()


class Tracer:
    """Collects spans and events against one clock.

    Parameters
    ----------
    clock:
        Zero-argument callable returning the current time; defaults to
        :data:`repro.utils.timing.now_s` (``time.perf_counter``).  The
        serving tier's virtual-clock spans bypass the clock entirely via
        :meth:`record_span` with explicit timestamps.
    unit:
        Unit of the clock's readings (``"s"``, ``"ms"`` or ``"us"``); used
        to normalize context-manager spans to microseconds.
    """

    enabled = True

    def __init__(self, clock=None, unit: str = "s") -> None:
        if unit not in _UNIT_US:
            raise ValueError(f"unit must be one of {sorted(_UNIT_US)}, got {unit!r}")
        self.clock = clock if clock is not None else now_s
        self.unit = unit
        #: Recorded events, already in Chrome ``trace_event`` shape:
        #: ``{"name", "cat", "ph", "ts", "dur"?, "pid", "tid", "args"?}``
        #: with ``ts``/``dur`` in microseconds.
        self.events: list[dict] = []

    # ------------------------------------------------------------------ #
    # Recording
    # ------------------------------------------------------------------ #
    def span(self, name: str, cat: str = "repro", tid: int = 0, args: dict | None = None):
        """A context-manager span timed by this tracer's clock."""
        return _Span(self, name, cat, tid, args)

    def event(self, name: str, cat: str = "repro", tid: int = 0, **args) -> None:
        """Record an instant event at the current clock reading."""
        scale = _UNIT_US[self.unit]
        entry = {
            "name": name,
            "cat": cat,
            "ph": "i",
            "ts": self.clock() * scale,
            "pid": 0,
            "tid": tid,
            "s": "t",
        }
        if args:
            entry["args"] = args
        self.events.append(entry)

    def record_span(
        self,
        name: str,
        cat: str = "repro",
        start: float = 0.0,
        dur: float = 0.0,
        tid: int = 0,
        unit: str = "s",
        args: dict | None = None,
    ) -> None:
        """Record one complete span from explicit timestamps.

        ``start``/``dur`` are in ``unit`` (``"s"``, ``"ms"`` or ``"us"``);
        they are normalized to microseconds here so every exporter reads one
        representation.  Negative durations are clamped to zero (clock
        wobble must not produce Perfetto-invalid events).
        """
        scale = _UNIT_US[unit]
        entry = {
            "name": name,
            "cat": cat,
            "ph": "X",
            "ts": start * scale,
            "dur": max(dur, 0.0) * scale,
            "pid": 0,
            "tid": tid,
        }
        if args:
            entry["args"] = args
        self.events.append(entry)

    def instant(
        self,
        name: str,
        cat: str = "repro",
        ts: float = 0.0,
        tid: int = 0,
        unit: str = "s",
        args: dict | None = None,
    ) -> None:
        """Record an instant event from an explicit timestamp.

        The virtual-clock serving tier marks sheds, hedge fires and
        preemptions at ``loop.time()`` readings (virtual milliseconds) that
        are not this tracer's clock; this is :meth:`record_span`'s
        explicit-timestamp twin for zero-duration marks.
        """
        entry = {
            "name": name,
            "cat": cat,
            "ph": "i",
            "ts": ts * _UNIT_US[unit],
            "pid": 0,
            "tid": tid,
            "s": "t",
        }
        if args:
            entry["args"] = args
        self.events.append(entry)

    # ------------------------------------------------------------------ #
    # Maintenance
    # ------------------------------------------------------------------ #
    def clear(self) -> None:
        """Drop every recorded event (the bench runner snapshots between scenarios)."""
        self.events.clear()


#: The process-wide current tracer; NULL_TRACER unless installed.
_CURRENT: NullTracer | Tracer = NULL_TRACER


def get_tracer():
    """The process-wide tracer every instrumented layer records into."""
    return _CURRENT


def set_tracer(tracer) -> NullTracer | Tracer:
    """Install ``tracer`` process-wide (``None`` → disable); returns the previous one."""
    global _CURRENT
    previous = _CURRENT
    _CURRENT = tracer if tracer is not None else NULL_TRACER
    return previous
