"""Counters, gauges and histograms with Prometheus text exposition.

:class:`MetricsRegistry` is the pull-model companion to the tracer's push
model: layers bump named counters/gauges/histograms, and the registry
renders one Prometheus text-exposition snapshot on demand.  The histogram
is the serving tier's exact :class:`repro.serve.cluster.LatencyHistogram`
(nearest-rank quantiles, log-spaced buckets), so latency numbers in metrics
and in cluster snapshots can never disagree.

:func:`prometheus_text` additionally flattens any nested ``stats_snapshot()``
dictionary (the serve/cluster tiers already expose those) into Prometheus
lines, so ``repro serve bench --prom`` needs no per-counter registration.
"""

from __future__ import annotations

import re

__all__ = ["MetricsRegistry", "prometheus_text"]

_NAME_OK = re.compile(r"[^a-zA-Z0-9_]")


def _metric_name(*parts: str) -> str:
    """Join path components into one valid Prometheus metric name."""
    return _NAME_OK.sub("_", "_".join(p.strip("_") for p in parts if p))


class MetricsRegistry:
    """Named counters, gauges and histograms behind one snapshot.

    All three families are created on first touch, so instrumented code
    never declares metrics up front:

    >>> registry = MetricsRegistry()
    >>> registry.counter("queries", 3)
    >>> registry.gauge("inflight", 7)
    >>> registry.histogram("flush_ms").record(1.5)
    >>> registry.snapshot()["counters"]["queries"]
    3
    """

    def __init__(self) -> None:
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, float] = {}
        self._histograms: dict[str, object] = {}

    def counter(self, name: str, amount: float = 1) -> None:
        """Add ``amount`` (default 1) to the monotonic counter ``name``."""
        self._counters[name] = self._counters.get(name, 0) + amount

    def gauge(self, name: str, value: float) -> None:
        """Set the gauge ``name`` to ``value`` (last write wins)."""
        self._gauges[name] = value

    def histogram(self, name: str):
        """The (lazily created) histogram ``name``; call ``.record(ms)`` on it.

        Histograms are :class:`repro.serve.cluster.LatencyHistogram`
        instances (imported lazily — the serve tier itself records metrics,
        so a module-level import would be circular): exact nearest-rank
        quantiles over log-spaced buckets.
        """
        hist = self._histograms.get(name)
        if hist is None:
            from repro.serve.cluster.histogram import LatencyHistogram

            hist = self._histograms[name] = LatencyHistogram()
        return hist

    def snapshot(self) -> dict:
        """All metrics in one JSON-stable dictionary."""
        return {
            "counters": dict(sorted(self._counters.items())),
            "gauges": dict(sorted(self._gauges.items())),
            "histograms": {
                name: hist.snapshot() for name, hist in sorted(self._histograms.items())
            },
        }

    def to_prometheus(self, prefix: str = "repro") -> str:
        """Render every metric as Prometheus text exposition."""
        return prometheus_text(self.snapshot(), prefix=prefix)


def _flatten(prefix: str, value, lines: list) -> None:
    if isinstance(value, dict):
        for key, sub in value.items():
            _flatten(_metric_name(prefix, str(key)), sub, lines)
    elif isinstance(value, (list, tuple)):
        for index, sub in enumerate(value):
            _flatten(_metric_name(prefix, str(index)), sub, lines)
    elif isinstance(value, bool):
        lines.append(f"{prefix} {int(value)}")
    elif isinstance(value, (int, float)):
        lines.append(f"{prefix} {value}")
    # Strings and None carry no sample; they are dropped from exposition.


def prometheus_text(snapshot: dict, prefix: str = "repro") -> str:
    """Flatten a nested snapshot dictionary into Prometheus text lines.

    Every numeric leaf becomes one ``<prefix>_<path> <value>`` sample with
    path components joined by ``_`` and sanitized to the Prometheus name
    charset; booleans export as 0/1, strings and ``None`` are skipped.
    The output ends with a newline, as the exposition format requires.

    >>> print(prometheus_text({"service": {"queries": 4}}), end="")
    repro_service_queries 4
    """
    lines: list[str] = []
    _flatten(_metric_name(prefix), snapshot, lines)
    return "\n".join(lines) + "\n"
