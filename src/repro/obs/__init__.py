"""Unified observability: tracing, metrics, and profiling across the stack.

The package has three legs, all zero-overhead when disabled:

- :mod:`repro.obs.tracer` — nested spans + structured events behind one
  process-wide tracer (:func:`get_tracer`/:func:`set_tracer`); disabled
  tracing returns an allocation-free no-op singleton.
- :mod:`repro.obs.metrics` — counters/gauges/histograms and Prometheus text
  exposition of any ``stats_snapshot()`` dictionary.
- :mod:`repro.obs.exporters` / :mod:`repro.obs.summary` — JSONL and Chrome
  ``trace_event`` artifacts plus the ``repro trace summarize`` aggregation.

See ``docs/OBSERVABILITY.md`` for the span taxonomy and how to read a trace
of a direction-optimizing run.
"""

from repro.obs.exporters import (
    chrome_trace,
    load_trace,
    write_chrome_trace,
    write_jsonl,
    write_trace,
)
from repro.obs.metrics import MetricsRegistry, prometheus_text
from repro.obs.summary import summarize_events, summary_lines
from repro.obs.tracer import NULL_TRACER, NullTracer, Tracer, get_tracer, set_tracer

__all__ = [
    "NULL_TRACER",
    "NullTracer",
    "Tracer",
    "get_tracer",
    "set_tracer",
    "MetricsRegistry",
    "prometheus_text",
    "chrome_trace",
    "load_trace",
    "write_chrome_trace",
    "write_jsonl",
    "write_trace",
    "summarize_events",
    "summary_lines",
]
