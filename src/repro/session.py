"""Fluent facade over the generate → partition → traverse pipeline.

The library's building blocks (edge lists, layouts, degree separation, the
traversal engine, frontier programs) compose explicitly, which the examples
and benchmarks need — but the common workflows are three lines of
boilerplate.  :func:`session` provides the one-liner:

>>> import repro
>>> result = (
...     repro.session(layout="2x1x2")
...     .generate(scale=10, seed=7)
...     .threshold(repro.auto)
...     .run(repro.BFSLevels(source=0))
... )
>>> int(result.distances[0])
0

A :class:`Session` collects configuration fluently (every setter returns the
session); :meth:`Session.build` partitions the graph once and returns a
:class:`GraphSession` with algorithm shorthands — ``graph.bfs()``,
``graph.components()``, ``graph.parents()``, ``graph.khop()``,
``graph.campaign()`` — all running through the same generic
:class:`repro.core.engine.TraversalEngine`.  Calling an algorithm (or
``run``) directly on the :class:`Session` builds implicitly.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.cluster.hardware import HardwareSpec
from repro.core.campaign import Campaign, run_campaign
from repro.core.engine import TraversalEngine
from repro.core.options import BFSOptions
from repro.core.programs import (
    BFSLevels,
    BFSParents,
    ConnectedComponents,
    FrontierProgram,
    KHopReachability,
)
from repro.core.results import TraversalResult
from repro.graph.edgelist import EdgeList
from repro.partition.delegates import suggest_threshold
from repro.partition.layout import ClusterLayout
from repro.partition.subgraphs import PartitionedGraph, build_partitions

__all__ = ["auto", "session", "Session", "GraphSession"]


class _Auto:
    """Sentinel for "derive this setting from the data" (``repro.auto``)."""

    _instance = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "auto"


#: Pass to :meth:`Session.threshold` to use the paper's suggested TH.
auto = _Auto()


def session(
    layout: str | ClusterLayout = "4x1x2",
    options: BFSOptions | None = None,
    hardware: HardwareSpec | None = None,
    backend=None,
    kernels=None,
    storage: str | None = None,
) -> "Session":
    """Start a fluent traversal session over a virtual cluster.

    Parameters
    ----------
    layout:
        Cluster geometry, either a :class:`repro.partition.ClusterLayout` or
        the ``"nodes x ranks-per-node x gpus-per-rank"`` notation the CLI
        uses (e.g. ``"4x1x2"``).
    options:
        Engine options; defaults to the paper's main configuration.
    hardware:
        Performance-model hardware; defaults to the paper's Ray system.
    backend:
        Execution backend for the super-steps: ``"inline"`` (default),
        ``"process"`` for the multiprocessing pool over shared memory,
        ``"thread"`` for the shared thread pool, or a live
        :class:`repro.exec.ExecutionBackend`; can also be set fluently via
        :meth:`Session.backend`.
    kernels:
        Kernel provider for the visit kernels: ``"numpy"``, ``"numba"``,
        ``"auto"`` (default — Numba when importable) or a live
        :class:`repro.exec.KernelProvider`; can also be set fluently via
        :meth:`Session.kernels`.  Results and counters are
        provider-invariant; only wall-clock changes.
    storage:
        Graph storage mode: ``"memory"`` (default), ``"mmap"`` for a
        memory-mapped store, ``"compressed"`` for a store with delta+varint
        nn/nd adjacency, or ``None`` for the ``REPRO_STORAGE`` environment
        default; can also be set fluently via :meth:`Session.storage`.
        Results and counters are storage-invariant; only memory and
        wall-clock change.
    """
    return Session(
        layout=layout,
        options=options,
        hardware=hardware,
        backend=backend,
        kernels=kernels,
        storage=storage,
    )


class Session:
    """Mutable fluent builder for one partitioned graph + engine."""

    def __init__(
        self,
        layout: str | ClusterLayout = "4x1x2",
        options: BFSOptions | None = None,
        hardware: HardwareSpec | None = None,
        backend=None,
        kernels=None,
        storage: str | None = None,
    ) -> None:
        self._layout = (
            layout if isinstance(layout, ClusterLayout) else ClusterLayout.from_notation(layout)
        )
        self._options = options
        self._hardware = hardware
        self._backend = backend
        self._kernels = kernels
        self._storage = storage
        self._storage_path: Path | None = None
        self._edges: EdgeList | None = None
        self._threshold: int | _Auto = auto
        self._built: GraphSession | None = None
        self._tracer = None
        self._trace_path: Path | None = None

    # ------------------------------------------------------------------ #
    # Configuration (each returns self)
    # ------------------------------------------------------------------ #
    def load(self, edges: EdgeList | str | Path) -> "Session":
        """Use an existing edge list, or load one from a ``.npz`` path."""
        if isinstance(edges, (str, Path)):
            from repro.graph.io import load_npz

            edges = load_npz(Path(edges))
        if not isinstance(edges, EdgeList):
            raise TypeError(f"expected an EdgeList or a path, got {type(edges).__name__}")
        self._edges = edges
        self._built = None
        return self

    def generate(
        self,
        scale: int = 14,
        kind: str = "rmat",
        seed: int = 11,
        weights: int | None = None,
    ) -> "Session":
        """Generate a prepared graph (RMAT or a synthetic substitute).

        ``weights`` seeds deterministic edge-keyed ``float64`` weights for
        the weighted program zoo (``None`` = unweighted).
        """
        if kind == "rmat":
            from repro.graph.rmat import generate_rmat

            edges = generate_rmat(scale, rng=seed, weights_seed=weights)
        elif kind == "friendster":
            from repro.graph.generators import friendster_like

            edges = friendster_like(
                num_vertices=1 << scale, rng=seed, weights_seed=weights
            ).prepared()
        elif kind == "wdc":
            from repro.graph.generators import wdc_like

            edges = wdc_like(
                num_vertices=1 << scale, rng=seed, weights_seed=weights
            ).prepared()
        else:
            raise ValueError(f"unknown graph kind {kind!r}")
        self._edges = edges
        self._built = None
        return self

    def threshold(self, threshold: int | _Auto) -> "Session":
        """Set the degree threshold TH (``repro.auto`` = paper's suggestion)."""
        if not isinstance(threshold, _Auto):
            threshold = int(threshold)
            if threshold < 1:
                raise ValueError(f"threshold must be >= 1, got {threshold}")
        self._threshold = threshold
        self._built = None
        return self

    def options(self, options: BFSOptions | None = None, **kwargs) -> "Session":
        """Set engine options, either whole or by keyword (e.g. ``uniquify=True``)."""
        if options is not None and kwargs:
            raise ValueError("pass either an options object or keywords, not both")
        if options is None:
            options = BFSOptions(**kwargs)
        self._options = options
        self._built = None
        return self

    def hardware(self, hardware: HardwareSpec) -> "Session":
        """Set the performance-model hardware."""
        self._hardware = hardware
        self._built = None
        return self

    def backend(self, backend) -> "Session":
        """Choose where super-steps execute (``"inline"`` / ``"process"`` /
        ``"thread"``).

        Accepts a backend registry name, a live
        :class:`repro.exec.ExecutionBackend` instance, or ``None`` for the
        ``REPRO_BACKEND`` environment default.  An already-built graph
        session switches in place (the partitioning is reused).

        >>> import repro  # doctest: +SKIP
        >>> repro.session().generate(scale=16).backend("process").bfs(0)
        """
        self._backend = backend
        if self._built is not None:
            self._built.backend(backend)
        return self

    def kernels(self, kernels) -> "Session":
        """Choose how the visit kernels compute (``"numpy"`` / ``"numba"`` /
        ``"auto"``).

        Accepts a provider name, a live :class:`repro.exec.KernelProvider`
        instance, or ``None`` for the ``REPRO_KERNELS`` environment default.
        An already-built graph session switches in place.

        >>> import repro  # doctest: +SKIP
        >>> repro.session().generate(scale=16).kernels("numba").bfs(0)
        """
        self._kernels = kernels
        if self._built is not None:
            self._built.kernels(kernels)
        return self

    def storage(self, storage: str | None, path: str | Path | None = None) -> "Session":
        """Choose the graph storage mode (``"memory"`` / ``"mmap"`` /
        ``"compressed"``).

        ``None`` falls back to the ``REPRO_STORAGE`` environment default.
        For the store-backed modes ``path`` optionally pins the store
        directory (default: a process-lifetime temporary directory).
        Traversal results and counters are storage-invariant.

        >>> import repro  # doctest: +SKIP
        >>> repro.session().generate(scale=16).storage("compressed").bfs(0)
        """
        from repro.storage import STORAGE_NAMES

        if storage is not None and storage not in STORAGE_NAMES:
            raise ValueError(
                f"storage must be one of {', '.join(STORAGE_NAMES)}, got {storage!r}"
            )
        self._storage = storage
        self._storage_path = Path(path) if path is not None else None
        self._built = None
        return self

    def trace(self, path: str | Path | None = None) -> "Session":
        """Enable tracing: install this session's tracer process-wide.

        Every traversal, super-step and serving operation run after this
        call records spans into the session's :class:`repro.obs.Tracer`
        (one per session, created on first call).  ``path`` pins a default
        export destination for :meth:`write_trace`.  Tracing never changes
        results or counters — only wall clock, within noise.

        >>> import repro  # doctest: +SKIP
        >>> s = repro.session().generate(scale=14).trace("run.trace.json")
        >>> s.bfs(0); s.write_trace()
        """
        from repro.obs import Tracer, set_tracer

        if self._tracer is None:
            self._tracer = Tracer()
        set_tracer(self._tracer)
        if path is not None:
            self._trace_path = Path(path)
        return self

    @property
    def tracer(self):
        """The session's tracer (``None`` until :meth:`trace` is called)."""
        return self._tracer

    def write_trace(self, path: str | Path | None = None) -> Path:
        """Export the collected trace; format picked by suffix.

        ``.jsonl`` writes line-delimited events, anything else Chrome
        ``trace_event`` JSON.  ``path`` defaults to the one given to
        :meth:`trace`.
        """
        from repro.obs import write_trace

        if self._tracer is None:
            raise RuntimeError("tracing is not enabled: call .trace() first")
        target = Path(path) if path is not None else self._trace_path
        if target is None:
            raise RuntimeError("no trace path: pass one here or to .trace(path)")
        return write_trace(self._tracer, target)

    # ------------------------------------------------------------------ #
    # Building and running
    # ------------------------------------------------------------------ #
    def build(self) -> "GraphSession":
        """Partition the graph and return the runnable handle (cached)."""
        if self._built is not None:
            return self._built
        if self._edges is None:
            raise RuntimeError(
                "no graph configured: call .load(edges) or .generate(scale=...) first"
            )
        threshold = self._threshold
        if isinstance(threshold, _Auto):
            threshold = suggest_threshold(self._edges, self._layout.num_gpus)
        graph = build_partitions(self._edges, self._layout, threshold)
        storage = self._storage
        if storage is None:
            from repro.storage import default_storage_name

            storage = default_storage_name()
        if storage != "memory":
            from repro.storage import apply_storage

            graph = apply_storage(graph, storage, path=self._storage_path)
        engine = TraversalEngine(
            graph,
            options=self._options,
            hardware=self._hardware,
            backend=self._backend,
            kernels=self._kernels,
        )
        self._built = GraphSession(edges=self._edges, graph=graph, engine=engine)
        return self._built

    def run(self, program: FrontierProgram) -> TraversalResult:
        """Build (if needed) and run one frontier program."""
        return self.build().run(program)

    def bfs(self, source: int) -> TraversalResult:
        """Build (if needed) and run BFS levels from ``source``."""
        return self.build().bfs(source)

    def parents(self, source: int) -> TraversalResult:
        """Build (if needed) and run the BFS parent-tree program."""
        return self.build().parents(source)

    def components(self) -> TraversalResult:
        """Build (if needed) and run connected components."""
        return self.build().components()

    def khop(self, source: int, max_hops: int) -> TraversalResult:
        """Build (if needed) and run k-hop reachability."""
        return self.build().khop(source, max_hops)

    def sssp(self, source: int, delta: float | str = "auto") -> TraversalResult:
        """Build (if needed) and run delta-stepping SSSP."""
        return self.build().sssp(source, delta=delta)

    def pagerank(self, **kwargs) -> TraversalResult:
        """Build (if needed) and run PageRank."""
        return self.build().pagerank(**kwargs)

    def wcc_hook(self) -> TraversalResult:
        """Build (if needed) and run hooking connected components."""
        return self.build().wcc_hook()

    def triangles(self) -> TraversalResult:
        """Build (if needed) and count triangles."""
        return self.build().triangles()

    def campaign(self, *args, **kwargs) -> Campaign:
        """Build (if needed) and run a multi-source campaign."""
        return self.build().campaign(*args, **kwargs)

    def run_many(self, *args, **kwargs) -> Campaign:
        """Build (if needed) and run many sources; see
        :meth:`GraphSession.run_many`."""
        return self.build().run_many(*args, **kwargs)

    def serve(self, *args, **kwargs):
        """Build (if needed) and start a query service; see
        :meth:`GraphSession.serve`."""
        return self.build().serve(*args, **kwargs)

    def serve_cluster(self, *args, **kwargs):
        """Build (if needed) and start a replicated serving tier; see
        :meth:`GraphSession.serve_cluster`."""
        return self.build().serve_cluster(*args, **kwargs)

    def bench(self, *args, **kwargs) -> dict:
        """Build (if needed) and wall-clock benchmark a program; see
        :meth:`GraphSession.bench`."""
        return self.build().bench(*args, **kwargs)


class GraphSession:
    """A partitioned graph bound to a traversal engine, with shorthands."""

    def __init__(self, edges: EdgeList, graph: PartitionedGraph, engine: TraversalEngine) -> None:
        self.edges = edges
        self.graph = graph
        self.engine = engine
        self._dynamic = None
        self._tracer = None
        self._trace_path: Path | None = None

    # ------------------------------------------------------------------ #
    # Generic execution
    # ------------------------------------------------------------------ #
    def run(self, program: FrontierProgram) -> TraversalResult:
        """Run any frontier program on this graph."""
        return self.engine.run(program)

    def backend(self, backend) -> "GraphSession":
        """Switch execution backends on the live engine (partition reused).

        ``backend`` is a registry name (``"inline"`` / ``"process"`` /
        ``"thread"``), a live :class:`repro.exec.ExecutionBackend`, or
        ``None`` for the environment default; the previously engine-owned
        backend is closed.
        """
        self.engine.use_backend(backend)
        return self

    @property
    def backend_name(self) -> str:
        """Registry name of the execution backend in effect."""
        return self.engine.backend_name

    def kernels(self, kernels) -> "GraphSession":
        """Switch kernel providers on the live engine (nothing to rebuild).

        ``kernels`` is a provider name (``"numpy"`` / ``"numba"`` /
        ``"auto"``), a live :class:`repro.exec.KernelProvider`, or ``None``
        for the environment default.
        """
        self.engine.use_kernels(kernels)
        return self

    def trace(self, path: str | Path | None = None) -> "GraphSession":
        """Enable tracing on the built graph; see :meth:`Session.trace`."""
        from repro.obs import Tracer, set_tracer

        if self._tracer is None:
            self._tracer = Tracer()
        set_tracer(self._tracer)
        if path is not None:
            self._trace_path = Path(path)
        return self

    @property
    def tracer(self):
        """The tracer installed by :meth:`trace` (``None`` until called)."""
        return self._tracer

    def write_trace(self, path: str | Path | None = None) -> Path:
        """Export the collected trace; see :meth:`Session.write_trace`."""
        from repro.obs import write_trace

        if self._tracer is None:
            raise RuntimeError("tracing is not enabled: call .trace() first")
        target = Path(path) if path is not None else self._trace_path
        if target is None:
            raise RuntimeError("no trace path: pass one here or to .trace(path)")
        return write_trace(self._tracer, target)

    @property
    def kernels_name(self) -> str:
        """Resolved registry name of the kernel provider in effect."""
        return self.engine.provider_name

    @property
    def storage_name(self) -> str:
        """Storage mode backing this session's graph arrays."""
        return getattr(self.graph, "storage", "memory")

    def close(self) -> None:
        """Release the engine's execution backend (idempotent)."""
        self.engine.close()

    def __enter__(self) -> "GraphSession":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #
    @property
    def dynamic(self):
        """The underlying :class:`repro.dynamic.DynamicGraph` (``None`` until
        the first :meth:`mutate` turns the session mutable)."""
        return self._dynamic

    def mutate(
        self,
        delta=None,
        *,
        inserts=None,
        deletes=None,
        max_overlay_fraction: float = 0.05,
        max_degree_crossings: int | None = None,
    ):
        """Apply one edge-update batch to this session's graph.

        The first call turns the session mutable in place: the already-built
        partitioning is adopted by a :class:`repro.dynamic.DynamicGraph` (no
        rebuild) and the engine is swapped for a
        :class:`repro.dynamic.DynamicEngine`, so every subsequent
        ``bfs``/``components``/``serve``/``run_many`` call sees the mutated
        graph.  Pass either a prepared :class:`repro.dynamic.EdgeDelta` or
        ``inserts=`` / ``deletes=`` arrays of ``(u, v)`` pairs.

        >>> import repro  # doctest: +SKIP
        >>> graph = repro.session().generate(scale=14).build()
        >>> graph.mutate(inserts=[[0, 42]])
        >>> graph.bfs(0).distances[42]
        1

        Returns the :class:`repro.dynamic.AppliedDelta` of effective changes.
        """
        from repro.dynamic import DynamicEngine, DynamicGraph, EdgeDelta

        if self.storage_name != "memory":
            raise RuntimeError(
                f"mutate() requires memory storage, but this graph is "
                f"{self.storage_name}-backed (stores are immutable); rebuild "
                "with storage='memory' to mutate"
            )
        if delta is None:
            if inserts is None and deletes is None:
                raise ValueError("pass a delta or inserts=/deletes= edge pairs")
            delta = EdgeDelta.inserts(inserts if inserts is not None else [])
            if deletes is not None:
                dels = EdgeDelta.deletes(deletes)
                delta = EdgeDelta(
                    insert_src=delta.insert_src,
                    insert_dst=delta.insert_dst,
                    delete_src=dels.delete_src,
                    delete_dst=dels.delete_dst,
                )
        elif inserts is not None or deletes is not None:
            raise ValueError("pass either a delta object or keyword pairs, not both")
        if self._dynamic is None:
            self._dynamic = DynamicGraph(
                self.edges,
                self.graph.layout,
                self.graph.threshold,
                max_overlay_fraction=max_overlay_fraction,
                max_degree_crossings=max_degree_crossings,
                partitioned=self.graph,
            )
            self.engine = DynamicEngine(self._dynamic, engine=self.engine)
        applied = self.engine.apply_delta(delta)
        # Keep the session's shorthand views pointed at the live graph.
        self.edges = self._dynamic.edges
        self.graph = self._dynamic.partitioned
        return applied

    # ------------------------------------------------------------------ #
    # Algorithm shorthands
    # ------------------------------------------------------------------ #
    def bfs(self, source: int) -> TraversalResult:
        """Hop distances from ``source`` (the paper's DOBFS)."""
        return self.run(BFSLevels(source=source))

    def parents(self, source: int) -> TraversalResult:
        """Graph500-style BFS parent tree from ``source``."""
        return self.run(BFSParents(source=source))

    def components(self) -> TraversalResult:
        """Connected-component labels by min-label propagation."""
        return self.run(ConnectedComponents())

    def khop(self, source: int, max_hops: int) -> TraversalResult:
        """Distances from ``source`` capped at ``max_hops`` levels."""
        return self.run(KHopReachability(source=source, max_hops=max_hops))

    def sssp(self, source: int, delta: float | str = "auto") -> TraversalResult:
        """Shortest-path distances from ``source`` over edge weights.

        Runs the delta-stepping driver (``delta="auto"`` picks the bucket
        width from the average degree; ``delta=float("inf")`` degrades to
        the Bellman-Ford schedule).  Requires a weighted graph — generate
        with ``weights=<seed>`` or load a weighted edge list.
        """
        from repro.weighted import DeltaSteppingSSSP

        return self.run(DeltaSteppingSSSP(source, delta=delta))

    def pagerank(
        self,
        damping: float = 0.85,
        mode: str = "fixed",
        iterations: int = 20,
        eps: float = 1e-7,
    ) -> TraversalResult:
        """Deterministic fixed-point PageRank (``"fixed"`` or ``"push"``)."""
        from repro.weighted import PageRank

        return self.run(
            PageRank(damping=damping, mode=mode, iterations=iterations, eps=eps)
        )

    def wcc_hook(self) -> TraversalResult:
        """Connected components by min-label hooking + pointer jumping."""
        from repro.weighted import ComponentsHooking

        return self.run(ComponentsHooking())

    def triangles(self) -> TraversalResult:
        """Exact global and per-vertex triangle counts."""
        from repro.weighted import TriangleCount

        return self.run(TriangleCount())

    def campaign(
        self,
        sources: np.ndarray | list[int] | int = 5,
        program_factory=None,
        seed: int = 11,
        validate=None,
        on_result=None,
    ) -> Campaign:
        """Run one program per source and aggregate (the paper's protocol).

        ``sources`` may be explicit vertices or a count of random sources
        drawn degree-weighted (the Graph500 convention of sampling sources
        with at least one edge).
        """
        if isinstance(sources, (int, np.integer)):
            from repro.graph.degree import out_degrees
            from repro.utils.rng import random_sources

            sources = random_sources(
                self.edges.num_vertices,
                int(sources),
                rng=seed,
                degrees=out_degrees(self.edges),
            )
        return run_campaign(
            self.engine,
            sources,
            program_factory=program_factory,
            validate=validate,
            on_result=on_result,
        )

    def run_many(
        self,
        sources: np.ndarray | list[int] | int,
        program: str = "levels",
        batch_size: int | str | None = "auto",
        max_hops: int = 3,
        seed: int = 11,
    ) -> Campaign:
        """Run one single-source program per source, batched when possible.

        Compatible source lists (``levels`` and ``khop`` — the visit-once,
        level-valued programs) are deduplicated and routed through the
        engine's fused MS-BFS path in sweeps of up to ``batch_size`` lanes;
        answers are bit-identical to sequential runs.  ``batch_size="auto"``
        picks the engine default; ``None``/1 forces sequential execution.

        ``sources`` may be explicit vertices or a count of random sources
        (drawn as in :meth:`campaign`).
        """
        if isinstance(sources, (int, np.integer)):
            from repro.graph.degree import out_degrees
            from repro.utils.rng import random_sources

            sources = random_sources(
                self.edges.num_vertices,
                int(sources),
                rng=seed,
                degrees=out_degrees(self.edges),
            )
        sources = [int(s) for s in np.asarray(sources, dtype=np.int64).ravel()]
        if program == "levels":
            programs = [BFSLevels(source=s) for s in sources]
        elif program == "khop":
            programs = [KHopReachability(source=s, max_hops=max_hops) for s in sources]
        else:
            raise ValueError(
                f"unknown program {program!r}; run_many batches 'levels' or 'khop'"
            )
        if batch_size == "auto":
            from repro.core.engine import DEFAULT_BATCH_SIZE

            batch_size = DEFAULT_BATCH_SIZE
        return self.engine.run_many(programs, batch_size=batch_size)

    def serve(
        self,
        batch_size: int = 32,
        cache_size: int = 1024,
        batched: bool = True,
        backend=None,
    ):
        """A :class:`repro.serve.QueryService` bound to this graph.

        ``backend`` (a name or :class:`repro.exec.ExecutionBackend`) switches
        this session's engine before serving, so batched sweeps can run on
        the process pool; ``None`` keeps the engine's current backend.

        >>> import repro  # doctest: +SKIP
        >>> service = repro.session().generate(scale=14).serve(batch_size=32)
        >>> from repro.serve import Query
        >>> service.query(Query("levels", source=0)).distances.shape
        (16384,)
        """
        from repro.serve import QueryService

        return QueryService(
            self.engine,
            batch_size=batch_size,
            cache_size=cache_size,
            batched=batched,
            backend=backend,
        )

    def serve_cluster(
        self,
        num_replicas: int = 2,
        *,
        batch_size: int = 32,
        cache_size: int = 1024,
        backend=None,
        queue_limit: int = 64,
        hedge: bool = True,
        hedge_quantile: float = 0.95,
        slo_ms: float | None = None,
        router: str = "affinity",
    ):
        """A replicated serving tier over this graph: ``(pool, dispatcher)``.

        Builds a :class:`repro.serve.ReplicaPool` of ``num_replicas`` query
        services sharing this graph (and, for frozen graphs, one execution
        backend), fronted by a :class:`repro.serve.ClusterDispatcher` that
        replays open-loop arrival streams on a virtual clock with admission
        control and request hedging.  The caller owns the pool: close it (or
        use it as a context manager) when done.

        >>> import repro  # doctest: +SKIP
        >>> from repro.serve import OpenLoopWorkload
        >>> sess = repro.session().generate(scale=12).build()
        >>> pool, dispatcher = sess.serve_cluster(3, slo_ms=50.0)
        >>> with pool:
        ...     stream = OpenLoopWorkload().generate(sess.edges.num_vertices)
        ...     snapshot = dispatcher.run(stream)
        >>> snapshot["cluster"]["latency"]["p99_ms"]  # doctest: +SKIP
        """
        from repro.serve.cluster import ClusterConfig, ClusterDispatcher, ReplicaPool

        pool = ReplicaPool(
            self.graph,
            num_replicas,
            backend=backend,
            batch_size=batch_size,
            cache_size=cache_size,
        )
        config = ClusterConfig(
            queue_limit=queue_limit,
            hedge=hedge and num_replicas >= 2,
            hedge_quantile=hedge_quantile,
            slo_ms=slo_ms,
            router=router,
        )
        return pool, ClusterDispatcher(pool, config)

    def bench(
        self,
        program: FrontierProgram | None = None,
        repeats: int = 3,
        check_determinism: bool = True,
    ) -> dict:
        """Wall-clock benchmark one program on this graph.

        Runs ``program`` (default: BFS levels from vertex 0) ``repeats``
        times through :func:`repro.bench.runner.time_program`, asserting that
        every pass produces identical workload counters, and returns the
        record: per-phase wall-clock minima in seconds (``wall_s``), modeled
        times (``modeled_ms``) and the deterministic ``counters``.

        >>> import repro  # doctest: +SKIP
        >>> repro.session().generate(scale=12).bench()["wall_s"]["traversal"] > 0
        True
        """
        from repro.bench.runner import time_program

        if program is None:
            program = BFSLevels(source=0)
        return time_program(
            self.engine,
            lambda: program,
            repeats=repeats,
            check_determinism=check_determinism,
        )
