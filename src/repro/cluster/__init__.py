"""Simulated GPU-cluster substrate.

The paper runs on the CORAL early-access system *Ray*: nodes with four P100
GPUs connected by NVLink inside a node and EDR (100 Gb/s) InfiniBand between
nodes.  This package provides the stand-in for that machine:

``hardware``
    :class:`HardwareSpec` — the calibrated machine parameters (GPU traversal
    throughput, NVLink and InfiniBand bandwidth and latency, kernel and MPI
    overheads) with defaults matching Ray.
``netmodel``
    :class:`NetworkModel` — analytic transfer/collective time formulas,
    including the message-size efficiency curve measured in §VI-A1 (optimal
    message size ≈ 4 MB) and tree-like reductions.
``topology``
    :class:`ClusterTopology` — which virtual GPUs share an MPI rank / node,
    derived from a :class:`repro.partition.layout.ClusterLayout`.
``comm``
    :class:`Communicator` — moves real NumPy buffers between virtual GPUs
    (all-to-all exchange and delegate-mask OR-reduction), while accounting
    communication volume and modeled time per phase.
"""

from repro.cluster.comm import (
    CommStats,
    Communicator,
    ExchangeResult,
    ReduceResult,
    ValueReduceResult,
)
from repro.cluster.hardware import HardwareSpec
from repro.cluster.netmodel import NetworkModel
from repro.cluster.topology import ClusterTopology

__all__ = [
    "HardwareSpec",
    "NetworkModel",
    "ClusterTopology",
    "Communicator",
    "CommStats",
    "ExchangeResult",
    "ReduceResult",
    "ValueReduceResult",
]
