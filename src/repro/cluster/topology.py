"""Cluster topology: which virtual GPUs share an MPI rank and a node.

The communication model distinguishes three locality classes:

* the same MPI rank (GPUs connected by NVLink through the same CPU socket),
* the same node but different ranks (the ``*x2x2`` configurations), and
* different nodes (InfiniBand).

For simplicity the cost model folds the second class into the inter-node path
(the paper's ``*x2x2`` runs likewise route inter-rank traffic through MPI even
when the ranks share a node), but the topology object exposes all three
relations so experiments can differentiate them when needed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.partition.layout import ClusterLayout

__all__ = ["ClusterTopology"]


@dataclass(frozen=True)
class ClusterTopology:
    """Derived locality relations for a :class:`ClusterLayout`."""

    layout: ClusterLayout

    @property
    def num_gpus(self) -> int:
        """Total GPU count."""
        return self.layout.num_gpus

    def rank_of_gpu(self, flat_gpu: int | np.ndarray) -> np.ndarray:
        """MPI rank of each flat GPU index."""
        return np.asarray(flat_gpu, dtype=np.int64) // self.layout.gpus_per_rank

    def node_of_gpu(self, flat_gpu: int | np.ndarray) -> np.ndarray:
        """Node index of each flat GPU index."""
        ranks = self.rank_of_gpu(flat_gpu)
        return ranks // self.layout.ranks_per_node

    def same_rank(self, gpu_a: int | np.ndarray, gpu_b: int | np.ndarray) -> np.ndarray:
        """Whether two GPUs share an MPI rank (NVLink path)."""
        return self.rank_of_gpu(gpu_a) == self.rank_of_gpu(gpu_b)

    def same_node(self, gpu_a: int | np.ndarray, gpu_b: int | np.ndarray) -> np.ndarray:
        """Whether two GPUs share a physical node."""
        return self.node_of_gpu(gpu_a) == self.node_of_gpu(gpu_b)

    def gpus_in_rank(self, rank: int) -> np.ndarray:
        """Flat GPU indices belonging to one MPI rank."""
        if not 0 <= rank < self.layout.num_ranks:
            raise ValueError(f"rank {rank} out of range [0, {self.layout.num_ranks})")
        start = rank * self.layout.gpus_per_rank
        return np.arange(start, start + self.layout.gpus_per_rank, dtype=np.int64)

    def root_gpu_of_rank(self, rank: int) -> int:
        """GPU0 of a rank — the GPU that participates in global reductions."""
        return int(self.gpus_in_rank(rank)[0])

    def peer_group_of_gpu(self, flat_gpu: int) -> np.ndarray:
        """GPUs with the same within-rank index across all ranks.

        Used by the local-all2all optimization: after the local exchange,
        normal-vertex traffic only flows among GPU0s, among GPU1s, etc.
        """
        within = flat_gpu % self.layout.gpus_per_rank
        return np.arange(
            within, self.num_gpus, self.layout.gpus_per_rank, dtype=np.int64
        )
