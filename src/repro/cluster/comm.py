"""Inter-GPU communication for the simulated cluster (paper §V).

Two communication patterns exist in the paper's model, and both are
implemented here with *real* buffer movement plus modeled cost:

**Delegate masks** (:meth:`Communicator.allreduce_delegate_masks`)
    The visited status of delegates is a packed bitmask replicated on every
    GPU.  Updates are combined with a two-phase OR-reduction: a local phase
    where every GPU in a rank pushes its mask to GPU0 over NVLink and GPU0
    reduces, and a global phase where the GPU0s of all ranks perform a
    tree-like (I)AllReduce over the network, after which the result is
    broadcast back locally.

**Normal vertices** (:meth:`Communicator.exchange_normals`)
    Newly-visited normal destinations of nn edges are sent point-to-point to
    their owner GPU.  Before transmission the sender bins vertices by
    destination GPU and converts the 64-bit global ids into 32-bit local ids
    (4 bytes per vertex on the wire — the paper's ``4|Enn|`` volume).  Two
    optional optimizations are modeled exactly as described: *local all2all*
    (first gather traffic within each rank onto the GPU with the destination's
    within-rank index, reducing the number of communicating pairs from ``p²``
    to ``p²/pgpu``) and *uniquification* (dropping duplicate destinations
    before sending).

The batched (MS-BFS style) engine path reuses both patterns with a lane-word
payload: :meth:`Communicator.exchange_batch` ships (vertex, source-bitset)
pairs — 4 bytes of local id plus ``8 * nwords`` bytes of lane words per
vertex, always OR-deduplicated per destination before transmission — and
:meth:`Communicator.allreduce_delegate_batch` OR-reduces the 2-D delegate
masks so one reduction of ``d x B`` bits amortizes the per-reduction latency
across the whole batch.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cluster.netmodel import NetworkModel
from repro.cluster.topology import ClusterTopology
from repro.utils.bitmask import BatchBitmask, Bitmask

__all__ = [
    "CommStats",
    "ExchangeResult",
    "BatchExchangeResult",
    "ReduceResult",
    "ValueReduceResult",
    "BatchReduceResult",
    "Communicator",
]


@dataclass
class CommStats:
    """Cumulative communication accounting for one BFS run."""

    normal_bytes_remote: int = 0
    normal_bytes_local: int = 0
    normal_vertices_sent: int = 0
    normal_vertices_deduplicated: int = 0
    normal_messages: int = 0
    delegate_mask_bytes: int = 0
    delegate_reductions: int = 0
    #: Bytes of per-delegate *value* reductions (programs whose delegate
    #: updates carry a payload — parent ids, component labels — instead of
    #: the 1-bit visited masks plain BFS needs).
    delegate_value_bytes: int = 0
    #: Extra bytes the normal-vertex exchange spent on per-vertex payloads.
    normal_payload_bytes: int = 0

    def total_bytes(self) -> int:
        """All bytes that crossed a link (local or remote)."""
        return (
            self.normal_bytes_remote
            + self.normal_bytes_local
            + self.delegate_mask_bytes
            + self.delegate_value_bytes
        )

    def as_dict(self) -> dict:
        """Flat dictionary for reporting."""
        return {
            "normal_bytes_remote": self.normal_bytes_remote,
            "normal_bytes_local": self.normal_bytes_local,
            "normal_vertices_sent": self.normal_vertices_sent,
            "normal_vertices_deduplicated": self.normal_vertices_deduplicated,
            "normal_messages": self.normal_messages,
            "delegate_mask_bytes": self.delegate_mask_bytes,
            "delegate_reductions": self.delegate_reductions,
            "delegate_value_bytes": self.delegate_value_bytes,
            "normal_payload_bytes": self.normal_payload_bytes,
        }


@dataclass
class ExchangeResult:
    """Outcome of one normal-vertex exchange super-step."""

    #: Per destination GPU, the concatenated array of received *local slot*
    #: ids (int64, possibly with duplicates unless uniquify was on).
    inboxes: list[np.ndarray]
    #: Modeled time of the on-GPU binning/conversion and the intra-rank
    #: local-all2all phase (max over GPUs), in seconds.
    local_time_s: float
    #: Modeled time of the point-to-point network phase (max over source
    #: GPUs), in seconds.
    remote_time_s: float
    #: Bytes sent over inter-rank links.
    remote_bytes: int
    #: Bytes moved over intra-rank (NVLink) links by the local all2all.
    local_bytes: int
    #: Per destination GPU, the int64 payload value travelling with each
    #: received slot id (parallel to ``inboxes``); ``None`` when the exchange
    #: carried bare vertex ids, as plain BFS does.
    payload_inboxes: list | None = None


@dataclass
class BatchExchangeResult:
    """Outcome of one batched normal-vertex exchange super-step."""

    #: Per destination GPU, the received *local slot* ids (int64, unique per
    #: sender after the OR-dedup, but possibly repeated across senders).
    inboxes: list[np.ndarray]
    #: Per destination GPU, the ``(len, nwords)`` uint64 lane words parallel
    #: to ``inboxes``.
    word_inboxes: list[np.ndarray]
    #: Modeled time of the on-GPU binning/dedup phase (max over GPUs), s.
    local_time_s: float
    #: Modeled time of the point-to-point network phase (max over GPUs), s.
    remote_time_s: float
    #: Bytes sent over inter-rank links.
    remote_bytes: int
    #: Bytes moved over intra-rank (NVLink) links.
    local_bytes: int


@dataclass
class ReduceResult:
    """Outcome of one delegate-mask reduction."""

    #: The OR of all input masks (shared by every GPU afterwards).
    merged: Bitmask
    #: Modeled time of the intra-rank push-to-GPU0 + broadcast phases.
    local_time_s: float
    #: Modeled time of the inter-rank (I)AllReduce phase.
    global_time_s: float
    #: Bytes exchanged between ranks.
    global_bytes: int


@dataclass
class ValueReduceResult:
    """Outcome of one delegate-value reduction."""

    #: Element-wise combine of all input arrays (shared by every GPU).
    merged: np.ndarray
    #: Modeled time of the intra-rank push-to-GPU0 + broadcast phases.
    local_time_s: float
    #: Modeled time of the inter-rank (I)AllReduce phase.
    global_time_s: float
    #: Bytes exchanged between ranks.
    global_bytes: int


@dataclass
class BatchReduceResult:
    """Outcome of one batched (2-D) delegate-mask reduction."""

    #: The OR of all input batch masks (shared by every GPU afterwards).
    merged: BatchBitmask
    #: Modeled time of the intra-rank push-to-GPU0 + broadcast phases.
    local_time_s: float
    #: Modeled time of the inter-rank (I)AllReduce phase.
    global_time_s: float
    #: Bytes exchanged between ranks.
    global_bytes: int


@dataclass
class Communicator:
    """Moves buffers between virtual GPUs and accounts for time and volume."""

    topology: ClusterTopology
    netmodel: NetworkModel
    stats: CommStats = field(default_factory=CommStats)

    # ------------------------------------------------------------------ #
    # Delegate masks
    # ------------------------------------------------------------------ #
    def allreduce_delegate_masks(
        self, masks: list[Bitmask], blocking: bool = True
    ) -> ReduceResult:
        """Two-phase OR-reduction of per-GPU delegate update masks.

        Parameters
        ----------
        masks:
            One packed mask per GPU (all the same size ``d`` bits).
        blocking:
            ``True`` models ``MPI_Allreduce``; ``False`` models
            ``MPI_Iallreduce`` with the software penalty observed on Ray.
        """
        layout = self.topology.layout
        if len(masks) != layout.num_gpus:
            raise ValueError(
                f"expected {layout.num_gpus} masks (one per GPU), got {len(masks)}"
            )
        if not masks:
            raise ValueError("cannot reduce zero masks")
        size = masks[0].size
        merged = Bitmask(size)
        for mask in masks:
            if mask.size != size:
                raise ValueError("all delegate masks must have the same size")
            merged.or_with(mask)

        nbytes = merged.nbytes
        local_time = 0.0
        if layout.gpus_per_rank > 1:
            local_time = self.netmodel.local_reduce_time(
                nbytes, layout.gpus_per_rank
            ) + self.netmodel.local_broadcast_time(nbytes, layout.gpus_per_rank)
        global_time = self.netmodel.global_allreduce_time(
            nbytes, layout.num_ranks, blocking=blocking
        )
        global_bytes = 0
        if layout.num_ranks > 1:
            # Reduction + broadcast trees each move one mask per participating
            # rank per phase; the paper counts 2 * d * prank / 8 bytes.
            global_bytes = 2 * nbytes * layout.num_ranks

        self.stats.delegate_mask_bytes += global_bytes
        self.stats.delegate_reductions += 1
        return ReduceResult(
            merged=merged,
            local_time_s=local_time,
            global_time_s=global_time,
            global_bytes=global_bytes,
        )

    def allreduce_delegate_values(
        self,
        values: list[np.ndarray],
        combine=np.minimum,
        blocking: bool = True,
    ) -> "ValueReduceResult":
        """Two-phase element-wise reduction of per-GPU delegate value arrays.

        The movement pattern is identical to :meth:`allreduce_delegate_masks`
        (intra-rank push to GPU0, inter-rank tree (I)AllReduce, broadcast
        back), but each delegate carries a 64-bit value instead of one bit —
        the channel frontier programs with per-vertex payloads (parent
        pointers, component labels) use, at 64x the mask volume.

        Parameters
        ----------
        values:
            One int64 array per GPU, all of size ``d``; positions a GPU did
            not update hold the combine identity (e.g. ``+inf``-like sentinel
            for ``np.minimum``).
        combine:
            Binary ufunc merging two value arrays element-wise.
        blocking:
            Same meaning as for the mask reduction.
        """
        layout = self.topology.layout
        if len(values) != layout.num_gpus:
            raise ValueError(
                f"expected {layout.num_gpus} value arrays (one per GPU), got {len(values)}"
            )
        if not values:
            raise ValueError("cannot reduce zero value arrays")
        size = values[0].size
        merged = np.array(values[0], dtype=np.int64, copy=True)
        for arr in values[1:]:
            if arr.size != size:
                raise ValueError("all delegate value arrays must have the same size")
            merged = combine(merged, arr)

        nbytes = merged.nbytes
        local_time = 0.0
        if layout.gpus_per_rank > 1:
            local_time = self.netmodel.local_reduce_time(
                nbytes, layout.gpus_per_rank
            ) + self.netmodel.local_broadcast_time(nbytes, layout.gpus_per_rank)
        global_time = self.netmodel.global_allreduce_time(
            nbytes, layout.num_ranks, blocking=blocking
        )
        global_bytes = 0
        if layout.num_ranks > 1:
            global_bytes = 2 * nbytes * layout.num_ranks

        self.stats.delegate_value_bytes += global_bytes
        self.stats.delegate_reductions += 1
        return ValueReduceResult(
            merged=merged,
            local_time_s=local_time,
            global_time_s=global_time,
            global_bytes=global_bytes,
        )

    def allreduce_delegate_batch(
        self, masks: list[BatchBitmask], blocking: bool = True
    ) -> BatchReduceResult:
        """Two-phase OR-reduction of per-GPU 2-D delegate update masks.

        The movement pattern is identical to
        :meth:`allreduce_delegate_masks`, but each delegate carries one bit
        per batch lane instead of a single visited bit: one reduction of
        ``d * B`` bits serves all B concurrent traversals, so the
        per-reduction latency (the dominant cost of thin iterations)
        amortizes across the whole batch.
        """
        layout = self.topology.layout
        if len(masks) != layout.num_gpus:
            raise ValueError(
                f"expected {layout.num_gpus} masks (one per GPU), got {len(masks)}"
            )
        if not masks:
            raise ValueError("cannot reduce zero masks")
        merged = masks[0].copy()
        for mask in masks[1:]:
            merged.or_with(mask)

        nbytes = merged.packed_nbytes
        local_time = 0.0
        if layout.gpus_per_rank > 1:
            local_time = self.netmodel.local_reduce_time(
                nbytes, layout.gpus_per_rank
            ) + self.netmodel.local_broadcast_time(nbytes, layout.gpus_per_rank)
        global_time = self.netmodel.global_allreduce_time(
            nbytes, layout.num_ranks, blocking=blocking
        )
        global_bytes = 0
        if layout.num_ranks > 1:
            global_bytes = 2 * nbytes * layout.num_ranks

        self.stats.delegate_mask_bytes += global_bytes
        self.stats.delegate_reductions += 1
        return BatchReduceResult(
            merged=merged,
            local_time_s=local_time,
            global_time_s=global_time,
            global_bytes=global_bytes,
        )

    def exchange_batch(
        self, outboxes: list[np.ndarray], outbox_words: list[np.ndarray]
    ) -> BatchExchangeResult:
        """Route batched (vertex, source-bitset) updates to their owner GPUs.

        Parameters
        ----------
        outboxes:
            One array of *global* destination vertex ids per source GPU (the
            unique destinations of that GPU's batched nn visit).
        outbox_words:
            Per source GPU, the ``(len, nwords)`` uint64 lane words parallel
            to its outbox.

        Each sender bins by destination owner, OR-combines duplicate
        destinations (batched traffic is always uniquified — merging lane
        words is free and strictly reduces volume), and sends 4-byte local
        ids plus ``8 * nwords`` bytes of lane words per vertex.  The id bytes
        are charged like the plain exchange; the lane words are accounted as
        payload bytes.
        """
        layout = self.topology.layout
        p = layout.num_gpus
        if len(outboxes) != p or len(outbox_words) != p:
            raise ValueError(f"expected {p} outboxes and word arrays")

        binned: list[list[np.ndarray]] = []
        binned_words: list[list[np.ndarray]] = []
        per_gpu_filter_time = np.zeros(p, dtype=np.float64)
        nwords = 1
        for src_gpu, out in enumerate(outboxes):
            out = np.asarray(out, dtype=np.int64).ravel()
            words = np.asarray(outbox_words[src_gpu], dtype=np.uint64)
            if words.ndim == 2 and words.shape[1] > 0:
                nwords = max(nwords, words.shape[1])
            if words.shape[0] != out.size:
                raise ValueError(
                    f"words of GPU {src_gpu} have {words.shape[0]} rows, "
                    f"expected {out.size}"
                )
            per_gpu_filter_time[src_gpu] += self.netmodel.filter_time(out.size)
            dest_owner = layout.flat_gpu_of(out)
            local_slot = layout.local_index_of(out).astype(np.int32)
            order = np.argsort(dest_owner, kind="stable")
            sorted_slots = local_slot[order]
            sorted_words = words[order]
            bounds = np.zeros(p + 1, dtype=np.int64)
            np.cumsum(np.bincount(dest_owner, minlength=p), out=bounds[1:])
            buckets: list[np.ndarray] = []
            wbuckets: list[np.ndarray] = []
            for g in range(p):
                chunk = sorted_slots[bounds[g]:bounds[g + 1]]
                wchunk = sorted_words[bounds[g]:bounds[g + 1]]
                if chunk.size:
                    # OR-dedup per destination before transmission.
                    unique, inverse = np.unique(chunk, return_inverse=True)
                    if unique.size != chunk.size:
                        reduced = np.zeros((unique.size, wchunk.shape[1]), dtype=np.uint64)
                        np.bitwise_or.at(reduced, inverse, wchunk)
                        chunk, wchunk = unique, reduced
                        per_gpu_filter_time[src_gpu] += self.netmodel.filter_time(
                            int(inverse.size)
                        )
                buckets.append(chunk)
                wbuckets.append(wchunk)
            binned.append(buckets)
            binned_words.append(wbuckets)

        inbox_parts: list[list[np.ndarray]] = [[] for _ in range(p)]
        word_parts: list[list[np.ndarray]] = [[] for _ in range(p)]
        per_gpu_send_time = np.zeros(p, dtype=np.float64)
        remote_bytes = 0
        local_bytes = 0
        payload_bytes = 0
        for src_gpu in range(p):
            for dst_gpu in range(p):
                chunk = binned[src_gpu][dst_gpu]
                if chunk.size == 0:
                    continue
                wchunk = binned_words[src_gpu][dst_gpu]
                inbox_parts[dst_gpu].append(chunk)
                word_parts[dst_gpu].append(wchunk)
                if dst_gpu == src_gpu:
                    continue
                nbytes = chunk.nbytes + wchunk.nbytes
                same_rank = bool(self.topology.same_rank(src_gpu, dst_gpu))
                per_gpu_send_time[src_gpu] += self.netmodel.p2p_time(nbytes, same_rank)
                if same_rank:
                    local_bytes += nbytes
                else:
                    remote_bytes += nbytes
                payload_bytes += wchunk.nbytes
                self.stats.normal_messages += 1
                self.stats.normal_vertices_sent += int(chunk.size)

        inboxes = [
            np.concatenate(parts).astype(np.int64)
            if parts
            else np.zeros(0, dtype=np.int64)
            for parts in inbox_parts
        ]
        word_inboxes = [
            np.concatenate(parts)
            if parts
            else np.zeros((0, nwords), dtype=np.uint64)
            for parts in word_parts
        ]
        self.stats.normal_bytes_remote += remote_bytes
        self.stats.normal_bytes_local += local_bytes
        self.stats.normal_payload_bytes += payload_bytes
        return BatchExchangeResult(
            inboxes=inboxes,
            word_inboxes=word_inboxes,
            local_time_s=float(per_gpu_filter_time.max()) if p else 0.0,
            remote_time_s=float(per_gpu_send_time.max()) if p else 0.0,
            remote_bytes=remote_bytes,
            local_bytes=local_bytes,
        )

    # ------------------------------------------------------------------ #
    # Normal-vertex exchange
    # ------------------------------------------------------------------ #
    def exchange_normals(
        self,
        outboxes: list[np.ndarray],
        local_all2all: bool = False,
        uniquify: bool = False,
        payloads: list[np.ndarray] | None = None,
        payload_combine=np.minimum,
        payload_identity: int | np.int64 | None = None,
    ) -> ExchangeResult:
        """Route newly-visited normal-vertex updates to their owner GPUs.

        Parameters
        ----------
        outboxes:
            One array of *global* destination vertex ids per source GPU (the
            raw output of that GPU's nn visit kernel, duplicates included).
        local_all2all:
            Enable the intra-rank pre-exchange (paper's "L" option).
        uniquify:
            Drop duplicate destinations before the remote send (paper's "U"
            option; only effective together with ``local_all2all``, matching
            the paper's pipeline where uniquify runs after the local
            exchange).
        payloads:
            Optional int64 value per outbox entry (parallel arrays).  Frontier
            programs whose vertex state is a payload (parent pointers,
            component labels) ship it over this channel; plain BFS leaves it
            ``None`` and pays only the paper's ``4|Enn|`` volume.
        payload_combine:
            Binary ufunc used to merge the payloads of duplicate destinations
            when ``uniquify`` is on (e.g. ``np.minimum`` for parent/label
            programs).
        payload_identity:
            Neutral element of ``payload_combine`` (defaults to the
            ``np.minimum`` identity, ``INT64_MAX``); pass the program's
            ``combine_identity`` when using a different combine.

        Returns
        -------
        ExchangeResult
            Per-destination-GPU arrays of local slot ids plus modeled times;
            ``payload_inboxes`` carries the received values when ``payloads``
            was given.
        """
        layout = self.topology.layout
        p = layout.num_gpus
        if len(outboxes) != p:
            raise ValueError(f"expected {p} outboxes, got {len(outboxes)}")
        has_payload = payloads is not None
        if has_payload and len(payloads) != p:
            raise ValueError(f"expected {p} payload arrays, got {len(payloads)}")
        if payload_identity is None:
            payload_identity = np.iinfo(np.int64).max

        pgpu = layout.gpus_per_rank
        empty_payload = np.zeros(0, dtype=np.int64)
        # Phase 1: per source GPU, bin by destination owner and convert the
        # 64-bit global ids to 32-bit local slots.  Charged as filter work.
        binned: list[list[np.ndarray]] = []
        binned_payloads: list[list[np.ndarray]] = []
        per_gpu_filter_time = np.zeros(p, dtype=np.float64)
        for src_gpu, out in enumerate(outboxes):
            out = np.asarray(out, dtype=np.int64).ravel()
            if has_payload:
                payload = np.asarray(payloads[src_gpu], dtype=np.int64).ravel()
                if payload.size != out.size:
                    raise ValueError(
                        f"payload of GPU {src_gpu} has {payload.size} entries, "
                        f"expected {out.size}"
                    )
            per_gpu_filter_time[src_gpu] += self.netmodel.filter_time(out.size)
            dest_owner = layout.flat_gpu_of(out)
            local_slot = layout.local_index_of(out).astype(np.int32)
            # Bucket by destination owner with one stable counting sort and a
            # prefix-sum split instead of p boolean scans over the outbox
            # (O(|out| log |out|) once vs O(p·|out|)); stability keeps each
            # bucket in original emission order, so the buckets are identical
            # to what the per-destination scans produced.
            order = np.argsort(dest_owner, kind="stable")
            sorted_slots = local_slot[order]
            bounds = np.zeros(p + 1, dtype=np.int64)
            np.cumsum(np.bincount(dest_owner, minlength=p), out=bounds[1:])
            buckets = [sorted_slots[bounds[g]:bounds[g + 1]] for g in range(p)]
            pbuckets: list[np.ndarray] = []
            if has_payload:
                sorted_payload = payload[order]
                pbuckets = [sorted_payload[bounds[g]:bounds[g + 1]] for g in range(p)]
            binned.append(buckets)
            binned_payloads.append(pbuckets)

        local_bytes = 0
        staging_payload_bytes = 0
        local_phase_time = np.zeros(p, dtype=np.float64)

        def chunk_nbytes(chunk: np.ndarray, pchunk: np.ndarray | None) -> int:
            return chunk.nbytes + (pchunk.nbytes if pchunk is not None else 0)

        if local_all2all and pgpu > 1:
            # Phase 2: within each rank, gather traffic destined for
            # within-rank index j (of any rank) onto the local GPU with index j.
            regrouped: list[list[tuple]] = [[] for _ in range(p)]
            for src_gpu in range(p):
                src_rank = src_gpu // pgpu
                for dst_gpu in range(p):
                    chunk = binned[src_gpu][dst_gpu]
                    if chunk.size == 0:
                        continue
                    pchunk = binned_payloads[src_gpu][dst_gpu] if has_payload else None
                    staging_gpu = src_rank * pgpu + (dst_gpu % pgpu)
                    if staging_gpu != src_gpu:
                        nbytes = chunk_nbytes(chunk, pchunk)
                        local_bytes += nbytes
                        if pchunk is not None:
                            staging_payload_bytes += pchunk.nbytes
                        t = self.netmodel.intra_node_time(nbytes)
                        local_phase_time[src_gpu] += t
                    regrouped[staging_gpu].append((dst_gpu, chunk, pchunk))
            # Phase 3 (optional): uniquify per destination on the staging GPU.
            staged: list[list[np.ndarray]] = []
            staged_payloads: list[list[np.ndarray]] = []
            for staging_gpu in range(p):
                buckets = [np.zeros(0, dtype=np.int32) for _ in range(p)]
                pbuckets = [empty_payload for _ in range(p)]
                groups: dict[int, list[np.ndarray]] = {}
                pgroups: dict[int, list[np.ndarray]] = {}
                for dst_gpu, chunk, pchunk in regrouped[staging_gpu]:
                    groups.setdefault(dst_gpu, []).append(chunk)
                    if has_payload:
                        pgroups.setdefault(dst_gpu, []).append(pchunk)
                for dst_gpu, chunks in groups.items():
                    merged = np.concatenate(chunks) if len(chunks) > 1 else chunks[0]
                    if has_payload:
                        pchunks = pgroups[dst_gpu]
                        pmerged = np.concatenate(pchunks) if len(pchunks) > 1 else pchunks[0]
                    else:
                        pmerged = None
                    if uniquify and merged.size:
                        before = merged.size
                        if has_payload:
                            # Duplicate destinations keep the combined payload
                            # (e.g. the smallest parent id / label).
                            unique, inverse = np.unique(merged, return_inverse=True)
                            preduced = np.full(
                                unique.size, payload_identity, dtype=np.int64
                            )
                            payload_combine.at(preduced, inverse, pmerged)
                            merged, pmerged = unique, preduced
                        else:
                            merged = np.unique(merged)
                        removed = before - merged.size
                        self.stats.normal_vertices_deduplicated += int(removed)
                        local_phase_time[staging_gpu] += self.netmodel.filter_time(before)
                    buckets[dst_gpu] = merged
                    if has_payload:
                        pbuckets[dst_gpu] = pmerged
                staged.append(buckets)
                staged_payloads.append(pbuckets)
            send_plan = staged
            payload_plan = staged_payloads
        else:
            send_plan = binned
            payload_plan = binned_payloads

        # Phase 4: the remote exchange.  Each source GPU sends its buckets
        # point-to-point; sends from one GPU are serialised, different GPUs
        # proceed in parallel, so the modeled remote time is the maximum over
        # source GPUs of their serial send time.
        inbox_parts: list[list[np.ndarray]] = [[] for _ in range(p)]
        payload_parts: list[list[np.ndarray]] = [[] for _ in range(p)]
        per_gpu_send_time = np.zeros(p, dtype=np.float64)
        remote_bytes = 0
        payload_bytes = 0
        for src_gpu in range(p):
            for dst_gpu in range(p):
                chunk = send_plan[src_gpu][dst_gpu]
                if chunk.size == 0:
                    continue
                pchunk = payload_plan[src_gpu][dst_gpu] if has_payload else None
                if dst_gpu == src_gpu:
                    inbox_parts[dst_gpu].append(chunk)
                    if has_payload:
                        payload_parts[dst_gpu].append(pchunk)
                    continue
                nbytes = chunk_nbytes(chunk, pchunk)
                same_rank = bool(self.topology.same_rank(src_gpu, dst_gpu))
                t = self.netmodel.p2p_time(nbytes, same_rank)
                per_gpu_send_time[src_gpu] += t
                if same_rank:
                    local_bytes += nbytes
                else:
                    remote_bytes += nbytes
                if has_payload:
                    payload_bytes += pchunk.nbytes
                self.stats.normal_messages += 1
                self.stats.normal_vertices_sent += int(chunk.size)
                inbox_parts[dst_gpu].append(chunk)
                if has_payload:
                    payload_parts[dst_gpu].append(pchunk)

        inboxes = [
            np.concatenate(parts).astype(np.int64) if parts else np.zeros(0, dtype=np.int64)
            for parts in inbox_parts
        ]
        payload_inboxes = None
        if has_payload:
            payload_inboxes = [
                np.concatenate(parts) if parts else empty_payload
                for parts in payload_parts
            ]
        self.stats.normal_bytes_remote += remote_bytes
        self.stats.normal_bytes_local += local_bytes
        self.stats.normal_payload_bytes += payload_bytes + staging_payload_bytes

        local_time = float((per_gpu_filter_time + local_phase_time).max()) if p else 0.0
        remote_time = float(per_gpu_send_time.max()) if p else 0.0
        return ExchangeResult(
            inboxes=inboxes,
            local_time_s=local_time,
            remote_time_s=remote_time,
            remote_bytes=remote_bytes,
            local_bytes=local_bytes,
            payload_inboxes=payload_inboxes,
        )
