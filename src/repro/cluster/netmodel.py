"""Analytic network/compute cost model.

The paper derives its scalability argument from closed-form communication
costs (§II-B and §V): point-to-point volume ``4|Enn|`` bytes for normal
vertices, tree-like reductions costing ``d log(prank)/4 · g`` per delegate-mask
exchange, and a ``√p`` growth for conventional 2D partitioning.  This module
turns those formulas — plus the microbenchmark observations of §VI-A1
(message-size efficiency peaking around 4 MB, CPU staging because RDMA is
unavailable) — into a reusable :class:`NetworkModel`.

The model is deliberately simple and fully documented: every method returns
seconds and takes explicit byte counts, so the benchmark harness can print the
same breakdowns the paper plots.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.cluster.hardware import HardwareSpec

__all__ = ["NetworkModel"]


@dataclass(frozen=True)
class NetworkModel:
    """Transfer-time and kernel-time formulas parameterised by a :class:`HardwareSpec`."""

    hardware: HardwareSpec = HardwareSpec()

    # ------------------------------------------------------------------ #
    # Message efficiency (paper §VI-A1)
    # ------------------------------------------------------------------ #
    def message_efficiency(self, nbytes: float) -> float:
        """Fraction of peak NIC bandwidth achieved for one message of ``nbytes``.

        The paper swept message sizes from 128 kB to 16 MB and found ~4 MB to
        be optimal for large transfers, with smaller messages benefitting from
        caching but generally achieving lower effective bandwidth.  We model
        this with a saturating curve that reaches ~63% of peak at one quarter
        of the optimal size, ≥95% at 3x the optimal size, and never drops
        below ``min_efficiency``.
        """
        hw = self.hardware
        if nbytes <= 0:
            return hw.min_efficiency
        x = nbytes / hw.optimal_message_bytes
        eff = 1.0 - math.exp(-4.0 * x)
        return max(hw.min_efficiency, min(1.0, eff))

    def effective_nic_bandwidth(self, nbytes: float) -> float:
        """Effective inter-node bandwidth (bytes/s) for one message."""
        return self.hardware.nic_bandwidth_Bps * self.message_efficiency(nbytes)

    # ------------------------------------------------------------------ #
    # Point-to-point transfers
    # ------------------------------------------------------------------ #
    def intra_node_time(self, nbytes: float) -> float:
        """GPU-to-GPU transfer within a node (over NVLink, through CPU memory)."""
        hw = self.hardware
        if nbytes <= 0:
            return 0.0
        return hw.nvlink_latency_s + nbytes / hw.nvlink_bandwidth_Bps

    def inter_node_time(self, nbytes: float) -> float:
        """GPU-to-GPU transfer between nodes.

        Includes MPI software overhead, NIC latency, message-size-dependent
        effective bandwidth and the CPU-staging copies required because Ray
        has no NIC-GPU RDMA (§VI-A2).
        """
        hw = self.hardware
        if nbytes <= 0:
            return 0.0
        staging = hw.staging_copies * (hw.nvlink_latency_s + nbytes / hw.nvlink_bandwidth_Bps)
        wire = nbytes / self.effective_nic_bandwidth(nbytes)
        return hw.mpi_message_overhead_s + hw.nic_latency_s + wire + staging

    def p2p_time(self, nbytes: float, same_rank: bool) -> float:
        """Transfer time for one message, dispatching on locality."""
        return self.intra_node_time(nbytes) if same_rank else self.inter_node_time(nbytes)

    # ------------------------------------------------------------------ #
    # Collectives
    # ------------------------------------------------------------------ #
    @staticmethod
    def _tree_depth(num_participants: int) -> int:
        """Depth of a binary reduction/broadcast tree."""
        if num_participants <= 1:
            return 0
        return int(math.ceil(math.log2(num_participants)))

    def local_reduce_time(self, nbytes: float, gpus_per_rank: int) -> float:
        """Push all peer-GPU masks to GPU0 of the rank and reduce there.

        The paper performs the local phase over NVLink: each non-root GPU
        sends its mask to GPU0, which reduces in parallel; we charge one
        NVLink transfer per peer GPU (they can overlap only partially because
        they share the link to CPU memory) plus a reduce kernel on GPU0.
        """
        if gpus_per_rank <= 1 or nbytes <= 0:
            return 0.0
        transfers = (gpus_per_rank - 1) * self.intra_node_time(nbytes)
        reduce_kernel = self.hardware.kernel_overhead_s + (
            (gpus_per_rank - 1) * nbytes / self.hardware.nvlink_bandwidth_Bps
        )
        return transfers + reduce_kernel

    def local_broadcast_time(self, nbytes: float, gpus_per_rank: int) -> float:
        """Broadcast the reduced mask from GPU0 back to the peer GPUs."""
        if gpus_per_rank <= 1 or nbytes <= 0:
            return 0.0
        return (gpus_per_rank - 1) * self.intra_node_time(nbytes)

    def global_allreduce_time(
        self, nbytes: float, num_ranks: int, blocking: bool = True
    ) -> float:
        """Tree-like inter-rank all-reduce of ``nbytes`` (the delegate masks).

        Matches the paper's model: a reduction plus a broadcast, each of depth
        ``log2(prank)``, i.e. communication time ``≈ 2 · nbytes · log2(prank) · g``
        which for a ``d``-bit mask is the quoted ``d · log(prank) / 4 · g``.
        The non-blocking variant (``MPI_Iallreduce``) carries a software
        penalty factor, reflecting the unoptimized implementation the paper
        observed on Ray (Fig. 8 shows blocking reduction being faster on ≥8
        nodes).
        """
        if num_ranks <= 1 or nbytes <= 0:
            return 0.0
        depth = self._tree_depth(num_ranks)
        per_hop = self.inter_node_time(nbytes)
        total = 2.0 * depth * per_hop
        if not blocking:
            total *= self.hardware.allreduce_software_factor
        return total

    def alltoall_time(
        self,
        per_pair_bytes: np.ndarray,
        same_rank_pairs: np.ndarray,
    ) -> float:
        """Time for a personalised all-to-all exchange.

        Parameters
        ----------
        per_pair_bytes:
            1D array of message sizes (one entry per communicating pair).
        same_rank_pairs:
            Boolean array of the same length; ``True`` where the pair shares a
            rank (NVLink), ``False`` for inter-node pairs.

        Notes
        -----
        Messages to different destinations leave a GPU serially through the
        same NIC, but different *sources* proceed in parallel; we therefore
        charge the maximum over sources of the per-source serial time, which
        the caller encodes by passing per-source groups (see
        :meth:`Communicator.exchange_normals`).  This method only handles a
        flat list: it sums inter-node messages (NIC serialisation) and takes
        NVLink messages at full parallel rate, which is the per-source model.
        """
        per_pair_bytes = np.asarray(per_pair_bytes, dtype=np.float64)
        same_rank_pairs = np.asarray(same_rank_pairs, dtype=bool)
        if per_pair_bytes.size == 0:
            return 0.0
        total = 0.0
        for nbytes, local in zip(per_pair_bytes, same_rank_pairs):
            total += self.p2p_time(float(nbytes), bool(local))
        return total

    # ------------------------------------------------------------------ #
    # Compute-side kernels
    # ------------------------------------------------------------------ #
    def traversal_time(self, edges_examined: float, backward: bool = False) -> float:
        """Time for one visit kernel examining ``edges_examined`` edges."""
        if edges_examined < 0:
            raise ValueError("edges_examined must be non-negative")
        hw = self.hardware
        rate = hw.gpu_backward_edges_per_s if backward else hw.gpu_forward_edges_per_s
        return hw.kernel_overhead_s + edges_examined / rate

    def filter_time(self, elements: float) -> float:
        """Time for a previsit/binning/conversion kernel over ``elements`` items."""
        if elements < 0:
            raise ValueError("elements must be non-negative")
        hw = self.hardware
        return hw.kernel_overhead_s + elements / hw.gpu_filter_elements_per_s

    def iteration_overhead(self) -> float:
        """Fixed per-super-step overhead."""
        return self.hardware.iteration_overhead_s
