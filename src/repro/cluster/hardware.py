"""Hardware parameters of the simulated cluster.

The defaults describe the paper's test machine, the CORAL early-access system
*Ray* (§VI-A1):

* NVIDIA Tesla P100 GPUs — we model their effective BFS traversal throughput
  rather than raw FLOPS, calibrated so that a single simulated GPU lands in
  the regime of the paper's single-node comparison (Gunrock reaches ~31.6
  GTEPS on one P100 for a scale-24 RMAT graph with direction optimization;
  plain forward BFS throughput is several times lower).
* NVLink between the GPUs and the CPU of a socket, 40 GB/s per direction.
* One EDR InfiniBand (100 Gb/s ≈ 12.5 GB/s) NIC per socket, FatTree network.
* No GPUDirect RDMA on Ray: every MPI transfer is staged through CPU memory,
  which we charge as an extra NVLink copy on each side.

All parameters are plain floats on a frozen dataclass so experiments can build
hypothetical machines (e.g. the NVLink2-equipped full CORAL) by replacing
fields with :func:`dataclasses.replace`.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["HardwareSpec"]


@dataclass(frozen=True)
class HardwareSpec:
    """Machine parameters used by :class:`repro.cluster.netmodel.NetworkModel`.

    Attributes
    ----------
    gpu_forward_edges_per_s:
        Effective edges/second one GPU sustains in forward-push traversal of
        its local subgraphs (irregular gather + atomic updates).
    gpu_backward_edges_per_s:
        Effective edges/second in backward-pull traversal; pulls are cheaper
        per examined edge because they read a bitmask and stop at the first
        visited parent.
    gpu_filter_elements_per_s:
        Throughput of the previsit kernels (duplicate filtering, queue
        generation, binning, 64->32-bit conversion), in elements/second.
    kernel_overhead_s:
        Fixed launch/sync cost per kernel invocation.
    iteration_overhead_s:
        Fixed per-super-step cost on each GPU (stream sync, direction
        decision, bookkeeping).  The paper's WDC discussion quotes a
        per-iteration overhead of a few microseconds.
    nvlink_bandwidth_Bps:
        GPU<->CPU / GPU<->GPU bandwidth within a node, bytes/second.
    nvlink_latency_s:
        Per-transfer latency within a node.
    nic_bandwidth_Bps:
        Inter-node bandwidth per NIC, bytes/second (EDR IB = 12.5e9).
    nic_latency_s:
        Per-message inter-node latency.
    mpi_message_overhead_s:
        Software overhead per MPI message (matching, progress engine).
    staging_copies:
        Number of extra CPU-staging copies per inter-node transfer (2 on Ray:
        GPU->CPU on the sender and CPU->GPU on the receiver, because NIC-GPU
        RDMA is unavailable).
    optimal_message_bytes:
        Message size at which the network reaches peak efficiency (≈4 MB in
        the paper's sweep).
    min_efficiency:
        Network efficiency floor for very small messages.
    allreduce_software_factor:
        Multiplier (> 1) applied to non-blocking all-reduce to model the
        unoptimized ``MPI_Iallreduce`` the paper observed on Ray.
    """

    gpu_forward_edges_per_s: float = 3.0e9
    gpu_backward_edges_per_s: float = 6.0e9
    gpu_filter_elements_per_s: float = 20.0e9
    kernel_overhead_s: float = 8.0e-6
    iteration_overhead_s: float = 5.0e-6
    nvlink_bandwidth_Bps: float = 40.0e9
    nvlink_latency_s: float = 5.0e-6
    nic_bandwidth_Bps: float = 12.5e9
    nic_latency_s: float = 2.0e-6
    mpi_message_overhead_s: float = 10.0e-6
    staging_copies: int = 2
    optimal_message_bytes: float = 4.0e6
    min_efficiency: float = 0.15
    allreduce_software_factor: float = 2.5

    def __post_init__(self) -> None:
        positive_fields = (
            "gpu_forward_edges_per_s",
            "gpu_backward_edges_per_s",
            "gpu_filter_elements_per_s",
            "nvlink_bandwidth_Bps",
            "nic_bandwidth_Bps",
            "optimal_message_bytes",
        )
        for name in positive_fields:
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        non_negative_fields = (
            "kernel_overhead_s",
            "iteration_overhead_s",
            "nvlink_latency_s",
            "nic_latency_s",
            "mpi_message_overhead_s",
        )
        for name in non_negative_fields:
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")
        if self.staging_copies < 0:
            raise ValueError("staging_copies must be non-negative")
        if not 0 < self.min_efficiency <= 1:
            raise ValueError("min_efficiency must be in (0, 1]")
        if self.allreduce_software_factor < 1:
            raise ValueError("allreduce_software_factor must be >= 1")

    @property
    def inverse_bandwidth_g(self) -> float:
        """The paper's ``g``: seconds per byte of inter-node communication."""
        return 1.0 / self.nic_bandwidth_Bps

    def with_scaled_overheads(self, factor: float) -> "HardwareSpec":
        """Return a copy with every fixed (per-message / per-kernel) overhead
        multiplied by ``factor``, leaving all bandwidths and throughputs
        unchanged.

        The paper's experiments run scale-26 subgraphs per GPU, so per-message
        latencies and kernel-launch overheads are negligible next to the
        bandwidth terms.  A laptop-scale reproduction shrinks the payloads by
        three to four orders of magnitude, which would otherwise leave every
        experiment latency-dominated — a regime the paper never operates in.
        Scaling the fixed overheads down by (roughly) the same factor as the
        workload restores the bandwidth-vs-computation balance the paper
        studies.  The scaling-figure benchmarks use this with a factor around
        ``1/4096`` (the per-GPU graph here is 2^12× smaller than the paper's).
        """
        if factor <= 0:
            raise ValueError("factor must be positive")
        from dataclasses import replace

        return replace(
            self,
            kernel_overhead_s=self.kernel_overhead_s * factor,
            iteration_overhead_s=self.iteration_overhead_s * factor,
            nvlink_latency_s=self.nvlink_latency_s * factor,
            nic_latency_s=self.nic_latency_s * factor,
            mpi_message_overhead_s=self.mpi_message_overhead_s * factor,
        )
